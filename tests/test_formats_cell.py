"""Tests for the CELL format (Section 4)."""

import numpy as np
import pytest

from repro.formats import CELLFormat
from repro.formats.base import as_csr, ceil_pow2_exponent
from repro.formats.cell import _fold_chunks, partition_bounds
from repro.formats.ell import PAD
from repro.matrices import power_law_graph, with_dense_rows


def roundtrip_equal(fmt, A):
    diff = fmt.to_csr() - A
    return diff.nnz == 0 or abs(diff).max() < 1e-5


class TestPartitionBounds:
    def test_even_split(self):
        assert partition_bounds(100, 4) == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_uneven_split_covers_all(self):
        bounds = partition_bounds(10, 3)
        assert bounds[0][0] == 0 and bounds[-1][1] == 10
        assert all(b0 < b1 for b0, b1 in bounds)
        for (a0, a1), (b0, b1) in zip(bounds, bounds[1:]):
            assert a1 == b0

    def test_too_many_partitions_rejected(self):
        with pytest.raises(ValueError):
            partition_bounds(3, 5)

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            partition_bounds(10, 0)


class TestFoldChunks:
    def test_short_rows_one_chunk_each(self):
        lengths = np.array([0, 3, 5, 1])
        row, off, ln, exp, folded = _fold_chunks(lengths, max_width=8)
        assert list(row) == [1, 2, 3]
        assert list(ln) == [3, 5, 1]
        assert not folded.any()
        assert list(exp) == [2, 3, 0]

    def test_long_row_folds_into_max_bucket(self):
        lengths = np.array([20])
        row, off, ln, exp, folded = _fold_chunks(lengths, max_width=8)
        assert list(row) == [0, 0, 0]
        assert list(ln) == [8, 8, 4]
        assert list(off) == [0, 8, 16]
        # all chunks land in the max (2^3) bucket
        assert list(exp) == [3, 3, 3]
        assert folded.all()

    def test_exact_multiple_no_remainder(self):
        lengths = np.array([16])
        row, off, ln, exp, folded = _fold_chunks(lengths, max_width=8)
        assert list(ln) == [8, 8]

    def test_natural_width_no_folding(self):
        lengths = np.array([1, 2, 3, 100])
        _, _, _, exp, folded = _fold_chunks(lengths, max_width=None)
        assert not folded.any()
        assert exp.max() == ceil_pow2_exponent(100)

    def test_non_power_of_two_width_rejected(self):
        with pytest.raises(ValueError):
            _fold_chunks(np.array([5]), max_width=6)


class TestCELLConstruction:
    def test_roundtrip_all_matrices(self, matrix_suite):
        for name, A in matrix_suite.items():
            for P in (1, 2):
                if P > A.shape[1]:
                    continue
                f = CELLFormat.from_csr(A, num_partitions=P)
                assert roundtrip_equal(f, A), (name, P)

    def test_roundtrip_with_capped_width(self, matrix_suite):
        for name, A in matrix_suite.items():
            f = CELLFormat.from_csr(A, num_partitions=1, max_widths=4)
            assert roundtrip_equal(f, A), name

    def test_roundtrip_per_partition_widths(self, matrix_suite):
        A = matrix_suite["power_law"]
        f = CELLFormat.from_csr(A, num_partitions=3, max_widths=[2, 8, None])
        assert roundtrip_equal(f, A)
        assert f.partitions[0].max_width <= 2
        assert f.partitions[1].max_width <= 8

    def test_bucket_membership_rule(self, matrix_suite):
        """Rows with 2^(i-1) < l <= 2^i land in the width-2^i bucket."""
        A = matrix_suite["power_law"]
        f = CELLFormat.from_csr(A, num_partitions=1)
        lengths = np.diff(A.indptr)
        for _, bucket in f.iter_buckets():
            if bucket.has_folds:
                continue
            for r in np.unique(bucket.row_ind):
                l = lengths[r]
                assert ceil_pow2_exponent(int(l)) == int(np.log2(bucket.width))

    def test_folded_rows_share_row_index(self, matrix_suite):
        A = matrix_suite["dense_rows"]
        f = CELLFormat.from_csr(A, num_partitions=1, max_widths=8)
        top = [b for _, b in f.iter_buckets() if b.has_folds]
        assert top, "capped width on dense rows must produce folds"
        for bucket in top:
            counts = np.bincount(bucket.row_ind)
            assert counts.max() > 1  # some row appears multiple times

    def test_block_nnz_is_multiple_of_max_width(self, matrix_suite):
        A = matrix_suite["power_law"]
        for bm in (1, 2, 4):
            f = CELLFormat.from_csr(A, num_partitions=2, block_multiple=bm)
            for part, bucket in f.iter_buckets():
                assert bucket.block_nnz == bm * part.max_width

    def test_block_rows_divide_bucket(self, matrix_suite):
        f = CELLFormat.from_csr(matrix_suite["community"], num_partitions=1)
        for _, bucket in f.iter_buckets():
            assert bucket.block_rows * bucket.width == bucket.block_nnz
            assert bucket.num_blocks == -(-bucket.num_rows // bucket.block_rows)

    def test_atomic_rules(self, matrix_suite):
        A = matrix_suite["power_law"]
        single = CELLFormat.from_csr(A, num_partitions=1)
        # single partition, natural widths: no folds, no atomics anywhere
        for _, bucket in single.iter_buckets():
            assert not single.needs_atomic(bucket)
        multi = CELLFormat.from_csr(A, num_partitions=2)
        for _, bucket in multi.iter_buckets():
            assert multi.needs_atomic(bucket)
        capped = CELLFormat.from_csr(A, num_partitions=1, max_widths=4)
        flags = [capped.needs_atomic(b) for _, b in capped.iter_buckets()]
        widths = [b.width for _, b in capped.iter_buckets()]
        # only the folded (max-width) bucket needs atomics
        assert any(flags)
        for w, fl in zip(widths, flags):
            if fl:
                assert w == 4

    def test_partition_column_ranges(self, matrix_suite):
        A = matrix_suite["uniform"]
        f = CELLFormat.from_csr(A, num_partitions=3)
        for part, bucket in f.iter_buckets():
            real = bucket.col[bucket.col != PAD]
            assert real.min() >= part.col_start
            assert real.max() < part.col_end

    def test_nnz_preserved_across_partitions(self, matrix_suite):
        for A in matrix_suite.values():
            for P in (1, 2):
                if P > A.shape[1]:
                    continue
                f = CELLFormat.from_csr(A, num_partitions=P)
                assert sum(p.nnz for p in f.partitions) == A.nnz

    def test_invalid_args(self, tiny_matrix):
        with pytest.raises(ValueError):
            CELLFormat.from_csr(tiny_matrix, num_partitions=0)
        with pytest.raises(ValueError):
            CELLFormat.from_csr(tiny_matrix, block_multiple=3)
        with pytest.raises(ValueError):
            CELLFormat.from_csr(tiny_matrix, num_partitions=2, max_widths=[4])

    def test_padding_reduced_by_partitioning_dense_rows(self):
        A = with_dense_rows(power_law_graph(400, 5, seed=9), 2, row_density=0.5, seed=10)
        p1 = CELLFormat.from_csr(A, num_partitions=1, max_widths=16)
        p4 = CELLFormat.from_csr(A, num_partitions=4, max_widths=16)
        # partitioning splits the dense rows' columns, shrinking per-partition
        # lengths and thus total padded slots
        assert p4.stored_elements <= p1.stored_elements * 1.1

    def test_empty_matrix(self):
        import scipy.sparse as sp

        A = as_csr(sp.csr_matrix((5, 7), dtype=np.float32))
        f = CELLFormat.from_csr(A, num_partitions=2)
        assert f.nnz == 0
        assert f.to_csr().nnz == 0


class TestBucketQueries:
    def test_unique_cols(self, matrix_suite):
        A = matrix_suite["community"]
        f = CELLFormat.from_csr(A, num_partitions=1)
        for _, bucket in f.iter_buckets():
            real = bucket.col[bucket.col != PAD]
            assert bucket.unique_cols == np.unique(real).size

    def test_wave_traffic_consistency(self, matrix_suite):
        A = matrix_suite["power_law"]
        f = CELLFormat.from_csr(A, num_partitions=1)
        for _, bucket in f.iter_buckets():
            unique, refs = bucket.wave_traffic(rows_per_wave=bucket.num_rows)
            assert refs.sum() == bucket.nnz
            assert unique.sum() == bucket.unique_cols
            # finer waves can only see more (or equal) compulsory fetches
            u2, r2 = bucket.wave_traffic(rows_per_wave=max(1, bucket.num_rows // 4))
            assert r2.sum() == bucket.nnz
            assert u2.sum() >= unique.sum()

    def test_num_output_rows(self, matrix_suite):
        A = matrix_suite["dense_rows"]
        f = CELLFormat.from_csr(A, num_partitions=1, max_widths=8)
        for _, bucket in f.iter_buckets():
            assert bucket.num_output_rows == np.unique(bucket.row_ind).size
            assert bucket.num_output_rows <= bucket.num_rows
