"""The vectorized CELL compose/kernel paths are bit-identical to the
pre-vectorization loop implementations kept in :mod:`repro.bench.reference`,
plus edge cases of the bulk partition split and the folding rule."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.bench.reference import (
    reference_build_buckets,
    reference_cell_execute,
    reference_compose_cell,
    reference_matrix_cost_profiles,
)
from repro.core.bucket_search import build_buckets, exhaustive_width_search
from repro.core.cost_model import matrix_cost_profiles
from repro.formats.base import as_csr
from repro.formats.cell import CELLFormat, partition_bounds, partition_cells, split_csr
from repro.kernels.cell_spmm import CELLSpMM
from repro.matrices.collection import SuiteSparseLikeCollection

SUITE_J = 128


@pytest.fixture(scope="module")
def collection():
    return [e.matrix for e in SuiteSparseLikeCollection(size=6, max_rows=4000, seed=7)]


def tuned_compose(A, P, J=SUITE_J):
    cells = split_csr(A, P)
    profiles = matrix_cost_profiles(A, P, cells=cells)
    widths = [
        1 << build_buckets(p, J, num_partitions=P).max_exp
        if p.num_nonempty_rows
        else 1
        for p in profiles
    ]
    return CELLFormat.from_csr(A, num_partitions=P, max_widths=widths, cells=cells)


def assert_formats_identical(a, b):
    """Every array of every bucket matches bitwise, dtypes included."""
    assert a.shape == b.shape and a.nnz == b.nnz
    assert len(a.partitions) == len(b.partitions)
    for pa, pb in zip(a.partitions, b.partitions):
        assert (pa.col_start, pa.col_end) == (pb.col_start, pb.col_end)
        assert len(pa.buckets) == len(pb.buckets)
        for ba, bb in zip(pa.buckets, pb.buckets):
            assert ba.width == bb.width
            assert ba.block_rows == bb.block_rows
            assert ba.has_folds == bb.has_folds
            assert np.array_equal(ba.row_ind, bb.row_ind)
            assert np.array_equal(ba.col, bb.col)
            assert np.array_equal(ba.val, bb.val)
            assert ba.col.dtype == bb.col.dtype
            assert ba.val.dtype == bb.val.dtype
            assert ba.row_ind.dtype == bb.row_ind.dtype


class TestBitIdentity:
    """Vectorized rewrite vs. the reference loops, on seeded matrices."""

    @pytest.mark.parametrize("P", [1, 3, 4])
    def test_tuned_compose_matches_reference(self, collection, P):
        for A in collection:
            assert_formats_identical(
                reference_compose_cell(A, P, SUITE_J), tuned_compose(A, P)
            )

    def test_compose_matches_reference_on_suite(self, matrix_suite):
        from repro.bench.reference import reference_cell_from_csr

        for name, A in matrix_suite.items():
            for P in (1, 2, 3):
                if P > A.shape[1]:
                    continue
                for caps in (None, 4):
                    ref = reference_cell_from_csr(A, num_partitions=P, max_widths=caps)
                    new = CELLFormat.from_csr(A, num_partitions=P, max_widths=caps)
                    assert_formats_identical(ref, new)

    def test_non_canonical_input_matches_reference(self):
        rng = np.random.default_rng(0)
        r = rng.integers(0, 60, size=400)
        c = rng.integers(0, 80, size=400)
        v = rng.standard_normal(400).astype(np.float32)
        A = sp.csr_matrix(sp.coo_matrix((v, (r, c)), shape=(60, 80)))
        A.has_canonical_format = False  # force the canonicalizing path
        for P in (2, 4):
            assert_formats_identical(
                reference_compose_cell(A, P, SUITE_J), tuned_compose(A, P)
            )

    @pytest.mark.parametrize("P", [1, 4])
    def test_all_costs_matches_scalar_cost(self, collection, P):
        for A in collection:
            for prof in matrix_cost_profiles(A, P):
                if not prof.num_nonempty_rows:
                    continue
                costs = prof.all_costs(SUITE_J, num_partitions=P)
                for e in range(prof.natural_max_exp + 1):
                    assert costs[e] == prof.cost(e, SUITE_J, num_partitions=P)

    @pytest.mark.parametrize("P", [1, 3])
    def test_cost_profiles_match_reference(self, collection, P):
        for A in collection:
            new = matrix_cost_profiles(A, P)
            ref = reference_matrix_cost_profiles(A, P)
            for pn, pr in zip(new, ref):
                assert pn.num_nonempty_rows == pr.num_nonempty_rows
                assert pn.natural_max_exp == pr.natural_max_exp
                for e in range(pn.natural_max_exp + 1):
                    assert pn.cost(e, SUITE_J, num_partitions=P) == pr.cost(
                        e, SUITE_J, num_partitions=P
                    )

    @pytest.mark.parametrize("P", [1, 4])
    def test_width_search_matches_reference(self, collection, P):
        for A in collection:
            refs = reference_matrix_cost_profiles(A, P)
            news = matrix_cost_profiles(A, P)
            for pr, pn in zip(refs, news):
                if not pr.num_nonempty_rows:
                    continue
                assert (
                    reference_build_buckets(pr, SUITE_J, P)
                    == build_buckets(pn, SUITE_J, num_partitions=P).max_exp
                )

    def test_binary_search_agrees_with_exhaustive(self, collection):
        for A in collection:
            for prof in matrix_cost_profiles(A, 1):
                if not prof.num_nonempty_rows:
                    continue
                b = build_buckets(prof, SUITE_J)
                x = exhaustive_width_search(prof, SUITE_J)
                assert b.cost <= x.cost * (1 + 1e-12)
                assert x.evaluations == prof.natural_max_exp + 1

    @pytest.mark.parametrize("P", [1, 3])
    def test_execute_matches_reference(self, collection, P):
        kernel = CELLSpMM()
        rng = np.random.default_rng(3)
        for A in collection:
            fmt = tuned_compose(A, P)
            B = rng.standard_normal((A.shape[1], 16)).astype(np.float32)
            assert np.array_equal(reference_cell_execute(fmt, B), kernel.execute(fmt, B))

    def test_execute_reuses_cached_slab(self, collection):
        fmt = tuned_compose(collection[0], 1)
        kernel = CELLSpMM()
        B = np.ones((fmt.shape[1], 4), dtype=np.float32)
        C1 = kernel.execute(fmt, B)
        _, bucket = next(fmt.iter_buckets())
        slab_before = bucket.csr_slab
        C2 = kernel.execute(fmt, B)
        assert bucket.csr_slab is slab_before  # cached, not rebuilt
        assert np.array_equal(C1, C2)


class TestPartitionCellsEdgeCases:
    def test_counts_and_starts_cover_all_elements(self, matrix_suite):
        for A in matrix_suite.values():
            for P in (1, 2, 3):
                if P > A.shape[1]:
                    continue
                bounds = partition_bounds(A.shape[1], P)
                counts, starts = partition_cells(A, bounds)
                assert counts.sum() == A.nnz
                for p, (c0, c1) in enumerate(bounds):
                    for r in range(A.shape[0]):
                        n, s = int(counts[r, p]), int(starts[r, p])
                        cols = A.indices[s : s + n]
                        assert ((cols >= c0) & (cols < c1)).all()

    def test_more_partitions_than_columns_rejected(self):
        A = as_csr(sp.csr_matrix(np.ones((4, 3), dtype=np.float32)))
        with pytest.raises(ValueError, match="exceeds matrix columns"):
            CELLFormat.from_csr(A, num_partitions=5)
        with pytest.raises(ValueError, match="exceeds matrix columns"):
            split_csr(A, 5)

    def test_empty_partition_has_no_buckets(self):
        # All nnz in the left half of the columns: partition 1 stays empty.
        dense = np.zeros((6, 8), dtype=np.float32)
        dense[:, :4] = np.arange(24, dtype=np.float32).reshape(6, 4) + 1
        A = as_csr(dense)
        fmt = CELLFormat.from_csr(A, num_partitions=2)
        assert fmt.partitions[1].buckets == []
        assert fmt.partitions[0].nnz == A.nnz
        assert (abs(fmt.to_csr() - A)).nnz == 0

    def test_empty_matrix(self):
        A = sp.csr_matrix((5, 7), dtype=np.float32)
        fmt = CELLFormat.from_csr(A, num_partitions=2)
        assert all(p.buckets == [] for p in fmt.partitions)
        assert fmt.to_csr().nnz == 0

    def test_single_long_row_folds_fully(self):
        # One row far longer than num_partitions * max_width: every chunk
        # folds into the max bucket, one bucket per partition.
        P, W, cols = 2, 4, 64
        dense = np.zeros((3, cols), dtype=np.float32)
        dense[1, :] = np.arange(1, cols + 1)
        A = as_csr(dense)
        fmt = CELLFormat.from_csr(A, num_partitions=P, max_widths=W)
        for part in fmt.partitions:
            assert len(part.buckets) == 1
            bucket = part.buckets[0]
            assert bucket.width == W
            assert bucket.has_folds
            assert bucket.num_rows == (cols // P) // W
            assert (bucket.row_ind == 1).all()
        assert (abs(fmt.to_csr() - A)).nnz == 0

    def test_mismatched_cells_split_rejected(self, matrix_suite):
        A = matrix_suite["power_law"]
        cells = split_csr(A, 2)
        with pytest.raises(ValueError, match="partitions"):
            CELLFormat.from_csr(A, num_partitions=3, cells=cells)
        with pytest.raises(ValueError, match="partitions"):
            matrix_cost_profiles(A, 3, cells=cells)


@st.composite
def seeded_matrices(draw, max_rows=50, max_cols=50):
    rows = draw(st.integers(1, max_rows))
    cols = draw(st.integers(1, max_cols))
    nnz = draw(st.integers(0, rows * cols // 2))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    r = rng.integers(0, rows, size=nnz)
    c = rng.integers(0, cols, size=nnz)
    v = rng.standard_normal(nnz).astype(np.float32)
    v[v == 0] = 1.0
    return as_csr(sp.csr_matrix((v, (r, c)), shape=(rows, cols)))


class TestRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(A=seeded_matrices(), P=st.integers(1, 4), cap=st.sampled_from([None, 2, 8]))
    def test_from_csr_roundtrips(self, A, P, cap):
        if P > A.shape[1]:
            P = A.shape[1]
        fmt = CELLFormat.from_csr(A, num_partitions=P, max_widths=cap)
        diff = fmt.to_csr() - A
        assert diff.nnz == 0 or abs(diff).max() < 1e-5
        assert fmt.nnz == A.nnz

    @settings(max_examples=40, deadline=None)
    @given(A=seeded_matrices(max_rows=30, max_cols=30), P=st.integers(1, 3))
    def test_matches_reference_compose(self, A, P):
        if P > A.shape[1]:
            P = A.shape[1]
        assert_formats_identical(
            reference_compose_cell(A, P, 32), tuned_compose(A, P, J=32)
        )
