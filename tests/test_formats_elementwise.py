"""Tests for COO, CSR, ELL, and Sliced-ELL formats."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats import COOFormat, CSRFormat, ELLFormat, SlicedELLFormat
from repro.formats.ell import PAD, pack_rows_ell


def roundtrip_equal(fmt, A):
    diff = (fmt.to_csr() - A)
    return diff.nnz == 0 or abs(diff).max() < 1e-6


class TestCOO:
    def test_roundtrip(self, matrix_suite):
        for name, A in matrix_suite.items():
            f = COOFormat.from_csr(A)
            assert roundtrip_equal(f, A), name

    def test_nnz_and_stored(self, tiny_matrix):
        f = COOFormat.from_csr(tiny_matrix)
        assert f.nnz == tiny_matrix.nnz
        assert f.stored_elements == tiny_matrix.nnz
        assert f.padding_ratio == 0.0

    def test_footprint(self, tiny_matrix):
        f = COOFormat.from_csr(tiny_matrix)
        assert f.footprint_bytes == 3 * 4 * tiny_matrix.nnz

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            COOFormat((2, 2), np.array([0]), np.array([0, 1]), np.array([1.0]))


class TestCSR:
    def test_roundtrip(self, matrix_suite):
        for name, A in matrix_suite.items():
            f = CSRFormat.from_csr(A)
            assert roundtrip_equal(f, A), name

    def test_row_lengths(self, tiny_matrix):
        f = CSRFormat.from_csr(tiny_matrix)
        assert list(f.row_lengths) == list(np.diff(tiny_matrix.indptr))

    def test_bad_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRFormat((3, 3), np.array([0, 1]), np.array([0]), np.array([1.0]))

    def test_footprint_matches_arrays(self, tiny_matrix):
        f = CSRFormat.from_csr(tiny_matrix)
        expected = (tiny_matrix.shape[0] + 1 + 2 * tiny_matrix.nnz) * 4
        assert f.footprint_bytes == expected


class TestPackRowsEll:
    def test_left_packing(self, tiny_matrix):
        col, val = pack_rows_ell(tiny_matrix, width=9)
        lengths = np.diff(tiny_matrix.indptr)
        for r in range(tiny_matrix.shape[0]):
            n = lengths[r]
            assert np.all(col[r, :n] != PAD)
            assert np.all(col[r, n:] == PAD)
            assert np.all(val[r, n:] == 0.0)

    def test_rejects_too_narrow(self, tiny_matrix):
        with pytest.raises(ValueError):
            pack_rows_ell(tiny_matrix, width=2)

    def test_row_subset(self, tiny_matrix):
        col, val = pack_rows_ell(tiny_matrix, width=9, rows=np.array([2, 5]))
        assert col.shape == (2, 9)
        # row 2 of the tiny matrix has 9 entries, row 5 has 4
        assert int((col[0] != PAD).sum()) == 9
        assert int((col[1] != PAD).sum()) == 4


class TestELL:
    def test_roundtrip(self, matrix_suite):
        for name, A in matrix_suite.items():
            f = ELLFormat.from_csr(A)
            assert roundtrip_equal(f, A), name

    def test_width_is_max_row_length(self, tiny_matrix):
        f = ELLFormat.from_csr(tiny_matrix)
        assert f.width == int(np.diff(tiny_matrix.indptr).max())

    def test_padding_grows_with_skew(self):
        uniform = sp.random(100, 100, density=0.05, random_state=0, format="csr")
        from repro.formats.base import as_csr

        uniform = as_csr(uniform)
        skewed = uniform.tolil()
        skewed[0, :] = 1.0
        skewed = as_csr(skewed.tocsr())
        assert (
            ELLFormat.from_csr(skewed).padding_ratio
            > ELLFormat.from_csr(uniform).padding_ratio
        )

    def test_stored_elements(self, tiny_matrix):
        f = ELLFormat.from_csr(tiny_matrix)
        assert f.stored_elements == tiny_matrix.shape[0] * f.width


class TestSlicedELL:
    def test_roundtrip(self, matrix_suite):
        for name, A in matrix_suite.items():
            f = SlicedELLFormat.from_csr(A, slice_height=16)
            assert roundtrip_equal(f, A), name

    def test_slice_widths_are_local(self, tiny_matrix):
        f = SlicedELLFormat.from_csr(tiny_matrix, slice_height=4)
        widths = [s.width for s in f.slices]
        # first slice holds the 9-long row; second slice's max is 4
        assert widths[0] == 9
        assert widths[1] == 4

    def test_less_padding_than_ell_on_skew(self, matrix_suite):
        A = matrix_suite["dense_rows"]
        assert (
            SlicedELLFormat.from_csr(A, slice_height=32).padding_ratio
            <= ELLFormat.from_csr(A).padding_ratio
        )

    def test_invalid_slice_height(self, tiny_matrix):
        with pytest.raises(ValueError):
            SlicedELLFormat.from_csr(tiny_matrix, slice_height=0)

    def test_slice_count(self, tiny_matrix):
        f = SlicedELLFormat.from_csr(tiny_matrix, slice_height=3)
        assert len(f.slices) == -(-tiny_matrix.shape[0] // 3)
