"""Property-based tests (hypothesis) on format round-trips and invariants."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.formats import (
    BCSRFormat,
    BlockedELLFormat,
    CELLFormat,
    COOFormat,
    CSRFormat,
    ELLFormat,
    SlicedELLFormat,
)
from repro.formats.base import as_csr, ceil_pow2, ceil_pow2_exponent


@st.composite
def sparse_matrices(draw, max_rows=40, max_cols=40):
    """Random small sparse matrices, including empty and single-row cases."""
    rows = draw(st.integers(1, max_rows))
    cols = draw(st.integers(1, max_cols))
    nnz = draw(st.integers(0, rows * cols // 2))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    r = rng.integers(0, rows, size=nnz)
    c = rng.integers(0, cols, size=nnz)
    v = rng.standard_normal(nnz).astype(np.float32)
    v[v == 0] = 1.0
    return as_csr(sp.csr_matrix((v, (r, c)), shape=(rows, cols)))


ALL_FORMATS = [
    (COOFormat, {}),
    (CSRFormat, {}),
    (ELLFormat, {}),
    (SlicedELLFormat, {"slice_height": 8}),
    (BCSRFormat, {"block_shape": (4, 4)}),
    (BlockedELLFormat, {"block_shape": (4, 4)}),
    (CELLFormat, {"num_partitions": 1}),
    (CELLFormat, {"num_partitions": 1, "max_widths": 4}),
]


@settings(max_examples=40, deadline=None)
@given(A=sparse_matrices())
def test_all_formats_roundtrip(A):
    for cls, kwargs in ALL_FORMATS:
        f = cls.from_csr(A, **kwargs)
        diff = f.to_csr() - A
        assert diff.nnz == 0 or abs(diff).max() < 1e-5, cls.__name__


@settings(max_examples=40, deadline=None)
@given(A=sparse_matrices())
def test_cell_multi_partition_roundtrip(A):
    for P in (2, 3):
        if P > A.shape[1]:
            continue
        f = CELLFormat.from_csr(A, num_partitions=P)
        diff = f.to_csr() - A
        assert diff.nnz == 0 or abs(diff).max() < 1e-5


@settings(max_examples=40, deadline=None)
@given(A=sparse_matrices())
def test_nnz_invariant(A):
    for cls, kwargs in ALL_FORMATS:
        f = cls.from_csr(A, **kwargs)
        assert f.nnz == A.nnz, cls.__name__


@settings(max_examples=40, deadline=None)
@given(A=sparse_matrices())
def test_stored_at_least_nnz_and_padding_bounds(A):
    for cls, kwargs in ALL_FORMATS:
        f = cls.from_csr(A, **kwargs)
        assert f.stored_elements >= f.nnz, cls.__name__
        assert 0.0 <= f.padding_ratio <= 1.0, cls.__name__


@settings(max_examples=60, deadline=None)
@given(n=st.integers(1, 10**9))
def test_ceil_pow2_properties(n):
    p = ceil_pow2(n)
    assert p >= n
    assert p & (p - 1) == 0  # power of two
    assert p < 2 * n or n == p  # tight: p/2 < n
    assert 1 << ceil_pow2_exponent(n) == p


@settings(max_examples=30, deadline=None)
@given(A=sparse_matrices(), cap_exp=st.integers(0, 6))
def test_cell_fold_bucket_row_budget(A, cap_exp):
    """Folded bucket rows = sum of ceil(l / W) over rows longer than W."""
    W = 1 << cap_exp
    f = CELLFormat.from_csr(A, num_partitions=1, max_widths=W)
    lengths = np.diff(A.indptr)
    expected = int(sum(-(-int(l) // W) for l in lengths if l > 0))
    total_rows = sum(b.num_rows for _, b in f.iter_buckets())
    assert total_rows == expected


@settings(max_examples=30, deadline=None)
@given(A=sparse_matrices())
def test_cell_footprint_monotone_in_padding(A):
    """Footprint grows monotonically as the format stores more slots."""
    f_natural = CELLFormat.from_csr(A, num_partitions=1)
    f_capped = CELLFormat.from_csr(A, num_partitions=1, max_widths=2)
    for f in (f_natural, f_capped):
        assert f.footprint_bytes >= 3 * f.nnz  # rowInd + col + val lower bound
