"""Tests for the thread-block scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.executor import BlockScheduler


class TestBlockScheduler:
    def setup_method(self):
        self.sched = BlockScheduler()

    def test_empty(self):
        r = self.sched.schedule(np.zeros(0), slots=8)
        assert r.makespan == 0.0 and r.imbalance == 1.0

    def test_fewer_blocks_than_slots(self):
        r = self.sched.schedule(np.array([5.0, 3.0, 1.0]), slots=8)
        assert r.makespan == 5.0

    def test_uniform_blocks_balance_perfectly(self):
        costs = np.full(64, 2.0)
        r = self.sched.schedule(costs, slots=8)
        assert r.makespan == pytest.approx(16.0)
        assert r.imbalance == pytest.approx(1.0)

    def test_single_giant_block_dominates(self):
        costs = np.concatenate([[1000.0], np.ones(63)])
        r = self.sched.schedule(costs, slots=8)
        assert r.makespan >= 1000.0
        assert r.excess > 0

    def test_lpt_no_worse_than_natural_on_adversarial_order(self):
        rng = np.random.default_rng(3)
        costs = rng.exponential(1.0, size=500)
        costs[-1] = 200.0  # straggler arriving last
        nat = self.sched.schedule(costs, slots=16, lpt=False)
        lpt = self.sched.schedule(costs, slots=16, lpt=True)
        assert lpt.makespan <= nat.makespan + 1e-9

    def test_makespan_lower_bounds(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            costs = rng.exponential(1.0, size=300)
            r = self.sched.schedule(costs, slots=10)
            assert r.makespan >= costs.max() - 1e-9
            assert r.makespan >= costs.sum() / 10 - 1e-9

    def test_approximate_path_close_to_exact(self):
        rng = np.random.default_rng(11)
        costs = rng.exponential(1.0, size=20000)
        exact = BlockScheduler(exact_threshold=50000).schedule(costs, 640, lpt=True)
        approx = BlockScheduler(exact_threshold=100).schedule(costs, 640, lpt=True)
        assert approx.makespan == pytest.approx(exact.makespan, rel=0.1)

    def test_excess_property(self):
        r = self.sched.schedule(np.array([10.0, 1.0, 1.0]), slots=2)
        assert r.excess == pytest.approx(r.makespan - r.mean_load)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(1, 300),
    slots=st.integers(1, 64),
)
def test_makespan_bounds_property(seed, n, slots):
    """Greedy makespan always within the classic (2 - 1/m) bound of optimal."""
    rng = np.random.default_rng(seed)
    costs = rng.exponential(1.0, size=n) + 0.01
    sched = BlockScheduler()
    for lpt in (False, True):
        r = sched.schedule(costs, slots, lpt=lpt)
        lower = max(costs.max(), costs.sum() / slots)
        assert r.makespan >= lower - 1e-9
        assert r.makespan <= lower * (2.0 - 1.0 / slots) + 1e-9
