"""Fault injection: seeded determinism, OOM classes, death, spikes."""

import numpy as np
import pytest

from repro.gpu import (
    DeviceLostError,
    FaultPolicy,
    FaultyDevice,
    GPUSpec,
    KernelStats,
    SimulatedDevice,
    SimulatedOOMError,
)


def _stats(footprint=1 << 20):
    return KernelStats(
        coalesced_load_bytes=1e6,
        coalesced_store_bytes=1e5,
        flops=1e6,
        block_costs=np.full(64, 100.0),
        footprint_bytes=footprint,
        label="test",
    )


def _fault_trace(device, calls=200):
    """Outcome letter per launch: ok / transient oom / lost / spike."""
    out = []
    for _ in range(calls):
        try:
            before = device.injected_spikes
            device.measure(_stats())
            out.append("s" if device.injected_spikes > before else ".")
        except SimulatedOOMError:
            out.append("o")
        except DeviceLostError:
            out.append("x")
    return "".join(out)


class TestFaultPolicy:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultPolicy(transient_oom_rate=1.5)
        with pytest.raises(ValueError):
            FaultPolicy(death_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPolicy(latency_spike_factor=0.5)

    def test_default_policy_injects_nothing(self):
        device = FaultyDevice()
        clean = SimulatedDevice()
        m = device.measure(_stats())
        assert m.time_s == pytest.approx(clean.measure(_stats()).time_s)
        assert device.injected_ooms == 0 and device.injected_spikes == 0


class TestDeterminism:
    def test_same_seed_same_fault_sequence(self):
        policy = FaultPolicy(
            transient_oom_rate=0.2, latency_spike_rate=0.1, death_rate=0.002, seed=42
        )
        a = _fault_trace(FaultyDevice(faults=policy))
        b = _fault_trace(FaultyDevice(faults=policy))
        assert a == b
        assert "o" in a  # the rate actually injects at 200 draws

    def test_different_seed_different_sequence(self):
        def mk(s):
            return FaultyDevice(faults=FaultPolicy(transient_oom_rate=0.3, seed=s))

        assert _fault_trace(mk(1)) != _fault_trace(mk(2))


class TestTransientOOM:
    def test_injected_oom_is_not_structural(self):
        device = FaultyDevice(faults=FaultPolicy(transient_oom_rate=1.0))
        with pytest.raises(SimulatedOOMError) as exc:
            device.measure(_stats())
        assert not exc.value.is_structural
        assert device.injected_ooms == 1

    def test_structural_oom_still_raised_and_classified(self):
        device = FaultyDevice()  # no injection at all
        too_big = _stats(footprint=device.spec.dram_bytes + 1)
        with pytest.raises(SimulatedOOMError) as exc:
            device.measure(too_big)
        assert exc.value.is_structural
        assert exc.value.required_bytes > exc.value.capacity_bytes

    def test_measure_many_draws_per_launch(self):
        device = FaultyDevice(faults=FaultPolicy(transient_oom_rate=1.0))
        with pytest.raises(SimulatedOOMError):
            device.measure_many([_stats(), _stats()])


class TestDeviceDeath:
    def test_death_is_permanent_until_revived(self):
        device = FaultyDevice(faults=FaultPolicy(death_rate=1.0))
        with pytest.raises(DeviceLostError):
            device.measure(_stats())
        assert device.dead
        # dead stays dead without further draws
        with pytest.raises(DeviceLostError):
            device.measure(_stats())
        device.revive()
        assert not device.dead

    def test_error_carries_device_name(self):
        device = FaultyDevice(
            spec=GPUSpec(name="test-part"), faults=FaultPolicy(death_rate=1.0)
        )
        with pytest.raises(DeviceLostError, match="test-part"):
            device.measure(_stats())


class TestLatencySpikes:
    def test_spike_scales_time_by_factor(self):
        clean = SimulatedDevice().measure(_stats())
        spiky = FaultyDevice(
            faults=FaultPolicy(latency_spike_rate=1.0, latency_spike_factor=8.0)
        ).measure(_stats())
        assert spiky.time_s == pytest.approx(clean.time_s * 8.0)
        assert spiky.breakdown.total_s == pytest.approx(clean.time_s * 8.0)

    def test_spike_preserves_stats(self):
        m = FaultyDevice(
            faults=FaultPolicy(latency_spike_rate=1.0)
        ).measure(_stats())
        assert m.stats.label == "test"
