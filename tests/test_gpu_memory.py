"""Tests for the memory-transaction and cache models."""

import numpy as np
import pytest

from repro.gpu.memory import (
    CacheModel,
    atomic_store_bytes,
    coalesced_bytes,
    scattered_bytes,
)


class TestTransactionHelpers:
    def test_coalesced(self):
        assert coalesced_bytes(100) == 400.0
        assert coalesced_bytes(0) == 0.0

    def test_scattered_worst_case_expands_to_sectors(self):
        # fully random: each 4-byte word pulls a 32-byte sector
        assert scattered_bytes(10, locality=0.0) == 10 * 32

    def test_scattered_perfect_locality_is_coalesced(self):
        assert scattered_bytes(10, locality=1.0) == coalesced_bytes(10)

    def test_scattered_monotone_in_locality(self):
        vals = [scattered_bytes(100, locality=l) for l in (0.0, 0.25, 0.5, 1.0)]
        assert vals == sorted(vals, reverse=True)

    def test_scattered_invalid_locality(self):
        with pytest.raises(ValueError):
            scattered_bytes(10, locality=1.5)

    def test_atomic_bytes(self):
        assert atomic_store_bytes(25) == 100.0


class TestCacheModel:
    def setup_method(self):
        self.cache = CacheModel(l2_bytes=1024 * 1024, min_miss=0.1)

    def test_no_refs_no_bytes(self):
        z = np.zeros(0)
        assert self.cache.b_traffic_bytes(z, z, J=32, num_b_rows=100) == 0.0

    def test_compulsory_only_when_no_reuse(self):
        # every reference distinct: charged exactly unique * J * 4
        unique = np.array([50.0])
        refs = np.array([50.0])
        out = self.cache.b_traffic_bytes(unique, refs, J=8, num_b_rows=10**6)
        assert out == pytest.approx(50 * 8 * 4)

    def test_resident_operand_pays_once(self):
        # B fits L2: compulsory K + refetches at the miss floor
        unique = np.array([100.0, 100.0])
        refs = np.array([500.0, 500.0])
        out = self.cache.b_traffic_bytes(unique, refs, J=8, num_b_rows=128)
        row = 8 * 4
        expected = 128 * row + (1000 - 128) * row * 0.1
        assert out == pytest.approx(expected)

    def test_streaming_degrades_toward_full_refetch(self):
        # working set 100x the L2: refetch cost approaches full price
        J = 256
        unique = np.array([4096.0])  # 4096 * 1KB = 4 MB >> 1 MB L2
        refs = np.array([40960.0])
        out = self.cache.b_traffic_bytes(unique, refs, J=J, num_b_rows=10**6)
        row = J * 4
        full = refs[0] * row
        assert out > 0.7 * full

    def test_smaller_working_set_cheaper(self):
        J = 128
        refs = np.array([10000.0])
        small = self.cache.b_traffic_bytes(np.array([500.0]), refs, J, 10**6)
        large = self.cache.b_traffic_bytes(np.array([8000.0]), refs, J, 10**6)
        # fewer distinct rows -> fewer compulsory fetches and better reuse
        assert small < large

    def test_partition_window_helps(self):
        # Same traffic pattern, but the reachable B rows fit in L2 when the
        # column partition is narrow (the CELL partitioning mechanism).
        J = 128
        unique = np.array([2000.0] * 4)
        refs = np.array([20000.0] * 4)
        wide = self.cache.b_traffic_bytes(unique, refs, J, num_b_rows=10**6)
        narrow = self.cache.b_traffic_bytes(unique, refs, J, num_b_rows=1024)
        assert narrow < wide

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            self.cache.b_traffic_bytes(np.zeros(2), np.zeros(3), 8, 10)
