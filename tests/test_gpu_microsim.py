"""Tests for the discrete-event SIMT micro-simulator."""

import numpy as np
import pytest

from repro.formats import CELLFormat, CSRFormat
from repro.gpu.device import V100
from repro.gpu.microsim import (
    DiscreteEventGPU,
    MemorySubsystem,
    TraceOp,
    cell_traces,
    csr_rowsplit_traces,
    simulate_cell,
    simulate_csr,
)
from repro.matrices import power_law_graph


class TestMemorySubsystem:
    def test_latency_plus_service(self):
        mem = MemorySubsystem(bytes_per_cycle=10.0, latency_cycles=100.0)
        done = mem.issue(0.0, 50.0)
        assert done == pytest.approx(5.0 + 100.0)

    def test_serialization(self):
        mem = MemorySubsystem(bytes_per_cycle=10.0, latency_cycles=0.0)
        first = mem.issue(0.0, 100.0)
        second = mem.issue(0.0, 100.0)  # issued concurrently, serialized
        assert second == pytest.approx(first + 10.0)

    def test_idle_gap_not_charged(self):
        mem = MemorySubsystem(bytes_per_cycle=10.0, latency_cycles=0.0)
        mem.issue(0.0, 10.0)
        done = mem.issue(100.0, 10.0)  # pipe long idle
        assert done == pytest.approx(101.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            MemorySubsystem(0.0, 1.0)


class TestTraceOp:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceOp("dma", 1.0)
        with pytest.raises(ValueError):
            TraceOp("mem", -1.0)


class TestEventLoop:
    def test_empty(self):
        r = DiscreteEventGPU().run([])
        assert r.cycles == 0.0 and r.blocks == 0

    def test_single_compute_block(self):
        gpu = DiscreteEventGPU(compute_ipc=10.0)
        r = gpu.run([[TraceOp("compute", 100.0)]])
        assert r.cycles == pytest.approx(10.0)

    def test_blocks_beyond_slots_queue(self):
        spec = V100.with_overrides(num_sms=1, blocks_per_sm=1)
        gpu = DiscreteEventGPU(spec, compute_ipc=1.0)
        traces = [[TraceOp("compute", 10.0)] for _ in range(3)]
        r = gpu.run(traces)
        # one slot: strictly serialized
        assert r.cycles == pytest.approx(30.0)

    def test_parallel_slots_overlap(self):
        spec = V100.with_overrides(num_sms=1, blocks_per_sm=4)
        gpu = DiscreteEventGPU(spec, compute_ipc=1.0)
        traces = [[TraceOp("compute", 10.0)] for _ in range(4)]
        assert gpu.run(traces).cycles == pytest.approx(10.0)

    def test_memory_bound_saturates_pipe(self):
        spec = V100.with_overrides(num_sms=4, blocks_per_sm=4)
        gpu = DiscreteEventGPU(spec)
        traces = [[TraceOp("mem", 1e6)] for _ in range(16)]
        r = gpu.run(traces)
        assert r.memory_utilization > 0.8

    def test_straggler_dominates(self):
        spec = V100.with_overrides(num_sms=2, blocks_per_sm=1)
        gpu = DiscreteEventGPU(spec, compute_ipc=1.0)
        traces = [[TraceOp("compute", 1.0)] for _ in range(4)]
        traces.append([TraceOp("compute", 1000.0)])
        r = gpu.run(traces)
        assert r.cycles >= 1000.0


class TestFormatTraces:
    def test_csr_trace_count(self, matrix_suite):
        A = matrix_suite["power_law"]
        fmt = CSRFormat.from_csr(A)
        traces = csr_rowsplit_traces(fmt, 16, rows_per_block=4)
        assert len(traces) == -(-A.shape[0] // 4)

    def test_cell_trace_count(self, matrix_suite):
        A = matrix_suite["power_law"]
        fmt = CELLFormat.from_csr(A, num_partitions=1, max_widths=8)
        traces = cell_traces(fmt, 16)
        assert len(traces) == sum(b.num_blocks for _, b in fmt.iter_buckets())

    def test_trace_bytes_account_for_padding(self, matrix_suite):
        A = matrix_suite["dense_rows"]
        fmt = CELLFormat.from_csr(A, num_partitions=1, max_widths=4)
        total_idxval = sum(
            op.amount for tr in cell_traces(fmt, 8) for op in tr if op.kind == "mem"
        )
        assert total_idxval > A.nnz * 8  # padded slots are moved too

    def test_type_validation(self, matrix_suite):
        A = matrix_suite["tiny"]
        with pytest.raises(TypeError):
            csr_rowsplit_traces(CELLFormat.from_csr(A), 8)
        with pytest.raises(TypeError):
            cell_traces(CSRFormat.from_csr(A), 8)


class TestCrossValidation:
    """The reason this module exists: the discrete-event engine must agree
    with the analytical model about which configuration is faster."""

    def test_cell_width_optimum_agrees(self, device):
        """Both engines put the optimal max bucket width in the same place
        (within one doubling) and see the same U-shaped trade-off — the
        Figure 11 property, checked engine-against-engine."""
        A = power_law_graph(1500, 8, seed=5)
        J = 32
        from repro.kernels import CELLSpMM

        micro, analytic = [], []
        for e in range(0, 9):
            fmt = CELLFormat.from_csr(A, num_partitions=1, max_widths=1 << e)
            micro.append(simulate_cell(fmt, J).time_s)
            analytic.append(CELLSpMM().measure(fmt, J, device).time_s)
        assert abs(int(np.argmin(micro)) - int(np.argmin(analytic))) <= 1
        for curve in (micro, analytic):
            # U-shape: both extremes are worse than the interior optimum
            assert curve[0] > min(curve)
            assert curve[-1] > min(curve)

    def test_csr_vs_cell_on_skewed_input(self, device):
        """Both engines agree CELL beats row-split CSR on a hub-heavy
        matrix at a capped width."""
        A = power_law_graph(2000, 10, seed=6)
        J = 32
        csr = CSRFormat.from_csr(A)
        cell = CELLFormat.from_csr(A, num_partitions=1, max_widths=32)
        assert simulate_cell(cell, J).time_s < simulate_csr(csr, J).time_s
