"""Edge cases of the multi-GPU row decomposition.

Complements ``tests/test_extensions.py`` (which covers scaling and
balance on realistic graphs): these tests pin the degenerate partitions
— all-zero matrices, more shards than rows — and the one-device-per-GPU
contract of :class:`MultiGPUSimulator`.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats.csr import CSRFormat
from repro.gpu.device import SimulatedDevice
from repro.gpu.multi import MultiGPUSimulator, MultiGPUSpec, partition_rows_by_nnz
from repro.kernels.csr_spmm import RowSplitCSRSpMM
from repro.matrices import power_law_graph


def _empty(rows: int, cols: int = 64) -> sp.csr_matrix:
    return sp.csr_matrix((rows, cols), dtype=np.float32)


def csr_compose(sub, J):
    return CSRFormat.from_csr(sub), RowSplitCSRSpMM()


class TestPartitionEdgeCases:
    def test_zero_nnz_splits_rows_evenly(self):
        # Regression: equal nnz targets used to collapse every cut onto
        # row 0, giving shard 0 all rows and the rest nothing.
        shards = partition_rows_by_nnz(_empty(100), 4)
        assert shards == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_zero_nnz_uneven_rows(self):
        shards = partition_rows_by_nnz(_empty(10), 3)
        assert shards[0][0] == 0 and shards[-1][1] == 10
        for (a0, a1), (b0, b1) in zip(shards, shards[1:]):
            assert a1 == b0
        sizes = [r1 - r0 for r0, r1 in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_rows_clamps(self):
        A = power_law_graph(5, 2, seed=1)
        shards = partition_rows_by_nnz(A, 16)
        assert len(shards) == 5
        assert shards[0][0] == 0 and shards[-1][1] == 5
        for (a0, a1), (b0, b1) in zip(shards, shards[1:]):
            assert a1 == b0

    def test_more_shards_than_rows_zero_nnz(self):
        shards = partition_rows_by_nnz(_empty(3), 8)
        assert shards == [(0, 1), (1, 2), (2, 3)]

    def test_zero_nnz_single_shard(self):
        assert partition_rows_by_nnz(_empty(7), 1) == [(0, 7)]


class _CountingDevice(SimulatedDevice):
    """Device that counts how many measurements it performed."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.calls = 0

    def measure(self, stats):
        self.calls += 1
        return super().measure(stats)


class TestPerShardDevices:
    def test_one_device_per_gpu(self):
        sim = MultiGPUSimulator(MultiGPUSpec(num_gpus=3))
        assert len(sim.devices) == 3
        assert len({id(d) for d in sim.devices}) == 3

    def test_shards_measure_on_their_own_device(self):
        spec = MultiGPUSpec(num_gpus=4)
        devices = [_CountingDevice(spec=spec.gpu) for _ in range(4)]
        sim = MultiGPUSimulator(spec, devices=devices)
        A = power_law_graph(2000, 8, seed=2)
        result = sim.measure(A, 32, csr_compose)
        assert len(result.shard_times_s) == 4
        # every device ran exactly its own shard, not a shared singleton
        assert [d.calls for d in devices] == [1, 1, 1, 1]

    def test_device_count_must_match_spec(self):
        spec = MultiGPUSpec(num_gpus=2)
        with pytest.raises(ValueError, match="devices"):
            MultiGPUSimulator(spec, devices=[SimulatedDevice()])

    def test_zero_nnz_measures_nothing(self):
        spec = MultiGPUSpec(num_gpus=2)
        devices = [_CountingDevice(spec=spec.gpu) for _ in range(2)]
        result = MultiGPUSimulator(spec, devices=devices).measure(
            _empty(50), 16, csr_compose
        )
        assert result.compute_s == 0.0
        assert [d.calls for d in devices] == [0, 0]

    def test_fewer_rows_than_gpus_leaves_devices_idle(self):
        spec = MultiGPUSpec(num_gpus=8)
        devices = [_CountingDevice(spec=spec.gpu) for _ in range(8)]
        A = power_law_graph(3, 2, seed=3)
        result = MultiGPUSimulator(spec, devices=devices).measure(
            A, 16, csr_compose
        )
        assert len(result.shard_times_s) == 3
        assert sum(d.calls for d in devices) <= 3
