"""Tests for the kernel profiler."""

import pytest

from repro.formats import CELLFormat, CSRFormat
from repro.gpu.profiler import profile
from repro.kernels import CELLSpMM, RowSplitCSRSpMM
from repro.matrices import power_law_graph


@pytest.fixture(scope="module")
def measurement(device):
    A = power_law_graph(3000, 10, seed=1)
    return RowSplitCSRSpMM().measure(CSRFormat.from_csr(A), 128, device)


class TestProfiler:
    def test_spmm_is_memory_bound(self, measurement):
        p = profile(measurement)
        assert p.bound == "memory"
        assert p.arithmetic_intensity < 10  # SpMM lives left of the ridge

    def test_fractions_bounded(self, measurement):
        p = profile(measurement)
        assert 0 <= p.bandwidth_fraction <= 1.5
        assert 0 <= p.compute_fraction <= 1.0
        assert 0 <= p.launch_fraction <= 1.0

    def test_render_mentions_key_metrics(self, measurement):
        text = profile(measurement).render()
        assert "bound" in text and "GB/s" in text and "GFLOP/s" in text

    def test_launch_bound_detection(self, device):
        """A tiny kernel spends most of its time in launch overhead."""
        A = power_law_graph(40, 2, seed=2)
        m = CELLSpMM().measure(CELLFormat.from_csr(A), 1, device)
        p = profile(m)
        assert p.bound == "launch"

    def test_invalid_measurement(self, measurement):
        import dataclasses

        broken = dataclasses.replace(measurement, time_s=0.0) if dataclasses.is_dataclass(measurement) else None
        if broken is None:
            pytest.skip("measurement not a dataclass")
        with pytest.raises(ValueError):
            profile(broken)

    def test_cell_achieves_higher_bandwidth_than_csr(self, device):
        """The streaming-efficiency calibration is visible in the profile."""
        A = power_law_graph(8000, 12, seed=3)
        m_csr = RowSplitCSRSpMM().measure(CSRFormat.from_csr(A), 256, device)
        m_cell = CELLSpMM().measure(
            CELLFormat.from_csr(A, num_partitions=1, max_widths=32), 256, device
        )
        assert (
            profile(m_cell).achieved_bandwidth_gbs
            > profile(m_csr).achieved_bandwidth_gbs
        )
