"""Tests for the roofline timing model and simulated device."""

import numpy as np
import pytest

from repro.gpu import KernelStats, SimulatedDevice, TimingModel, V100
from repro.gpu.device import SimulatedOOMError


def make_stats(**overrides) -> KernelStats:
    base = dict(
        coalesced_load_bytes=1e6,
        coalesced_store_bytes=1e5,
        flops=1e7,
        block_costs=np.full(1000, 1e4),
        footprint_bytes=1e6,
    )
    base.update(overrides)
    return KernelStats(**base)


class TestTimingModel:
    def setup_method(self):
        self.model = TimingModel()
        self.spec = V100

    def test_memory_bound_kernel(self):
        # Huge traffic, trivial balanced compute: time tracks bytes/bandwidth
        # (uniform blocks over all slots leave no straggler tail).
        stats = make_stats(
            coalesced_load_bytes=1e9, flops=1e6, block_costs=np.full(6400, 1e6 / 6400)
        )
        bd = self.model.estimate(stats, self.spec)
        assert bd.memory_s > bd.compute_s
        assert bd.total_s == pytest.approx(bd.memory_s + bd.launch_s, rel=1e-6)

    def test_compute_bound_kernel(self):
        stats = make_stats(
            coalesced_load_bytes=1e3, flops=1e12, block_costs=np.full(6400, 1e12 / 6400)
        )
        bd = self.model.estimate(stats, self.spec)
        assert bd.compute_s > bd.memory_s

    def test_more_bytes_more_time(self):
        t1 = self.model.estimate(make_stats(coalesced_load_bytes=1e8), self.spec).total_s
        t2 = self.model.estimate(make_stats(coalesced_load_bytes=2e8), self.spec).total_s
        assert t2 > t1

    def test_atomic_penalty_charged(self):
        plain = make_stats(
            coalesced_load_bytes=0.0, coalesced_store_bytes=1e8, atomic_store_bytes=0.0
        )
        atomic = make_stats(
            coalesced_load_bytes=0.0, coalesced_store_bytes=0.0, atomic_store_bytes=1e8
        )
        t_plain = self.model.estimate(plain, self.spec).memory_s
        t_atomic = self.model.estimate(atomic, self.spec).memory_s
        assert t_atomic == pytest.approx(t_plain * self.spec.atomic_penalty, rel=1e-6)

    def test_launch_overhead_per_launch(self):
        one = self.model.estimate(make_stats(num_launches=1), self.spec)
        ten = self.model.estimate(make_stats(num_launches=10), self.spec)
        extra = (ten.total_s - one.total_s)
        assert extra == pytest.approx(9 * self.spec.kernel_launch_us * 1e-6, rel=1e-6)

    def test_straggler_tail_extends_time(self):
        balanced = make_stats(block_costs=np.full(1000, 1e4))
        skewed_costs = np.full(1000, 1e4)
        skewed_costs[0] = 1e7
        skewed = make_stats(block_costs=skewed_costs, flops=1e7 + 1e7)
        t_b = self.model.estimate(balanced, self.spec).total_s
        t_s = self.model.estimate(skewed, self.spec).total_s
        assert t_s > t_b

    def test_bandwidth_efficiency_scales_memory(self):
        slow = make_stats(bandwidth_efficiency=0.5, coalesced_load_bytes=1e9)
        fast = make_stats(bandwidth_efficiency=1.0, coalesced_load_bytes=1e9)
        assert self.model.estimate(slow, self.spec).memory_s == pytest.approx(
            2 * self.model.estimate(fast, self.spec).memory_s
        )

    def test_invalid_efficiencies_rejected(self):
        with pytest.raises(ValueError):
            TimingModel(bandwidth_efficiency=0.0)
        with pytest.raises(ValueError):
            TimingModel(compute_efficiency=1.5)


class TestKernelStats:
    def test_lane_utilization_validation(self):
        with pytest.raises(ValueError):
            KernelStats(lane_utilization=0.0)
        with pytest.raises(ValueError):
            KernelStats(lane_utilization=1.5)

    def test_merge_sums_counters(self):
        a = make_stats(coalesced_load_bytes=1.0, flops=10.0, num_launches=1)
        b = make_stats(coalesced_load_bytes=2.0, flops=20.0, num_launches=2)
        m = KernelStats.merge([a, b])
        assert m.coalesced_load_bytes == 3.0
        assert m.flops == 30.0
        assert m.num_launches == 3
        assert m.num_blocks == a.num_blocks + b.num_blocks

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            KernelStats.merge([])

    def test_merge_weights_efficiencies(self):
        a = make_stats(bandwidth_efficiency=1.0, coalesced_load_bytes=1e6, coalesced_store_bytes=0)
        b = make_stats(bandwidth_efficiency=0.5, coalesced_load_bytes=3e6, coalesced_store_bytes=0)
        m = KernelStats.merge([a, b])
        assert 0.5 < m.bandwidth_efficiency < 1.0
        # byte-weighted toward b
        assert m.bandwidth_efficiency == pytest.approx((1.0 * 1e6 + 0.5 * 3e6) / 4e6)

    def test_effective_memory_bytes(self):
        s = make_stats(
            coalesced_load_bytes=10.0,
            scattered_load_bytes=5.0,
            coalesced_store_bytes=3.0,
            atomic_store_bytes=2.0,
        )
        assert s.effective_memory_bytes(atomic_penalty=3.0) == 10 + 5 + 3 + 6


class TestSimulatedDevice:
    def test_oom_raised(self):
        dev = SimulatedDevice()
        huge = make_stats(footprint_bytes=float(dev.spec.dram_bytes) * 2)
        with pytest.raises(SimulatedOOMError):
            dev.measure(huge)

    def test_throughput_bounded(self):
        dev = SimulatedDevice()
        m = dev.measure(make_stats())
        assert 0.0 <= m.compute_throughput <= 1.0

    def test_measure_many_sums(self):
        dev = SimulatedDevice()
        s = make_stats()
        one = dev.measure(s).time_s
        both = dev.measure_many([s, s]).time_s
        assert both == pytest.approx(2 * one, rel=1e-9)

    def test_spec_overrides(self):
        fast = V100.with_overrides(mem_bandwidth_gbs=1800.0)
        assert fast.mem_bandwidth_gbs == 1800.0
        assert V100.mem_bandwidth_gbs == 900.0  # frozen original untouched

    def test_time_units(self):
        dev = SimulatedDevice()
        m = dev.measure(make_stats())
        assert m.time_ms == pytest.approx(m.time_s * 1e3)
        assert m.time_us == pytest.approx(m.time_s * 1e6)

    def test_custom_spec_device_is_slower_with_less_bandwidth(self):
        stats = make_stats(coalesced_load_bytes=1e9)
        fast = SimulatedDevice(spec=V100)
        slow = SimulatedDevice(spec=V100.with_overrides(mem_bandwidth_gbs=90.0))
        assert slow.measure(stats).time_s > fast.measure(stats).time_s
