"""Cross-module integration tests: the full workflow at small scale."""

import numpy as np
import pytest

from repro.baselines import LiteFormBaseline, make_baseline
from repro.core import LiteForm, generate_training_data
from repro.core.training import compose_cell_for_partitions
from repro.formats import CELLFormat, CSRFormat
from repro.gpu import SimulatedDevice
from repro.kernels import CELLSpMM, RowSplitCSRSpMM, spmm_reference
from repro.matrices import (
    SuiteSparseLikeCollection,
    make_gnn_standin,
    power_law_graph,
    with_dense_rows,
)


@pytest.fixture(scope="module")
def pipeline():
    coll = SuiteSparseLikeCollection(size=12, max_rows=5000, seed=33)
    data = generate_training_data(coll, J_values=(32, 128))
    return LiteForm().fit(data), data


class TestEndToEnd:
    def test_train_compose_execute_verify(self, pipeline, dense_operand):
        lf, _ = pipeline
        A = power_law_graph(1200, 9, seed=17)
        plan = lf.compose(A, 64)
        B = dense_operand(A.shape[1], 64)
        C, m = lf.run(plan, B)
        np.testing.assert_allclose(C, spmm_reference(A, B), rtol=1e-4, atol=1e-4)
        assert m.time_s > 0
        assert plan.overhead.total_s < 1.0

    def test_composed_cell_beats_csr_on_skewed_input(self, pipeline):
        """The headline behaviour at test scale: on a hub-heavy matrix the
        composed CELL format outruns the cuSPARSE-style CSR kernel."""
        lf, _ = pipeline
        A = with_dense_rows(power_law_graph(6000, 10, seed=3), 3, 0.3, seed=4)
        plan = lf.compose(A, 128, force_cell=True)
        t_cell = lf.measure(plan, 128).time_s
        t_csr = RowSplitCSRSpMM().measure(CSRFormat.from_csr(A), 128, lf.device).time_s
        assert t_cell < t_csr

    def test_cost_model_choice_close_to_measured_best(self, pipeline):
        """Fig. 11 in miniature: Algorithm 3's width is within 20% of the
        simulated-time oracle."""
        lf, _ = pipeline
        A = power_law_graph(4000, 12, seed=5)
        plan = lf.compose(A, 128, force_cell=True)
        t_chosen = lf.measure(plan, 128).time_s
        kernel = CELLSpMM()
        t_best = min(
            kernel.measure(
                CELLFormat.from_csr(A, num_partitions=plan.num_partitions, max_widths=1 << e),
                128,
                lf.device,
            ).time_s
            for e in range(10)
        )
        assert t_chosen <= t_best * 1.2

    def test_selector_agrees_with_measured_labels_in_sample(self, pipeline):
        lf, data = pipeline
        agree = (lf.selector.predict_features(data.format_X) == data.format_y).mean()
        assert agree > 0.75

    def test_gnn_standin_through_baselines(self, pipeline, dense_operand):
        """The Fig. 6 pipeline on the smallest GNN graph with 3 systems."""
        lf, _ = pipeline
        dev = SimulatedDevice()
        A = make_gnn_standin("cora", seed=1)
        B = dense_operand(A.shape[1], 32)
        ref = spmm_reference(A, B)
        times = {}
        for name in ("cusparse", "sputnik", "stile"):
            system = make_baseline(name)
            prep = system.prepare(A, 32, dev)
            C, m = system.execute(prep, B, dev)
            np.testing.assert_allclose(C, ref, rtol=1e-3, atol=1e-3)
            times[name] = m.time_s
        prep = LiteFormBaseline(lf).prepare(A, 32, dev)
        C, m = LiteFormBaseline(lf).execute(prep, B, dev)
        np.testing.assert_allclose(C, ref, rtol=1e-3, atol=1e-3)
        # LiteForm at least competitive with generic CSR on cora
        assert m.time_s < times["cusparse"] * 1.2

    def test_partition_composition_roundtrip_large(self, dense_operand):
        """compose_cell_for_partitions stays exact on a larger matrix with
        every candidate partition count."""
        A = power_law_graph(3000, 15, seed=8)
        B = dense_operand(A.shape[1], 16)
        ref = spmm_reference(A, B)
        for P in (1, 4, 16):
            fmt = compose_cell_for_partitions(A, P, 16)
            C = CELLSpMM().execute(fmt, B)
            np.testing.assert_allclose(C, ref, rtol=1e-4, atol=1e-4)


class TestDeterminism:
    def test_measurements_are_reproducible(self, pipeline):
        """The whole simulated stack is deterministic — same input, same
        femtosecond."""
        lf, _ = pipeline
        A = power_law_graph(800, 6, seed=10)
        t1 = lf.measure(lf.compose(A, 64, force_cell=True), 64).time_s
        t2 = lf.measure(lf.compose(A, 64, force_cell=True), 64).time_s
        assert t1 == t2

    def test_training_data_reproducible(self):
        coll = SuiteSparseLikeCollection(size=3, max_rows=2500, seed=77)
        a = generate_training_data(coll, J_values=(32,))
        b = generate_training_data(coll, J_values=(32,))
        assert [s.label for s in a.format_samples] == [s.label for s in b.format_samples]
        assert [s.cell_time_s for s in a.format_samples] == [
            s.cell_time_s for s in b.format_samples
        ]
