"""Numeric correctness of every SpMM kernel against the dense reference."""

import numpy as np
import pytest

from repro.formats import (
    BCSRFormat,
    CELLFormat,
    CSRFormat,
    ELLFormat,
    SlicedELLFormat,
)
from repro.kernels import (
    BCSRSpMM,
    CELLSpMM,
    DgSparseSpMM,
    ELLSpMM,
    RowSplitCSRSpMM,
    SlicedELLSpMM,
    SputnikSpMM,
    TacoSpMM,
    spmm_reference,
)
from repro.kernels.taco_spmm import TacoSchedule

KERNEL_CASES = [
    ("cusparse", RowSplitCSRSpMM(), CSRFormat, {}),
    ("sputnik", SputnikSpMM(), CSRFormat, {}),
    ("dgsparse", DgSparseSpMM(), CSRFormat, {}),
    ("taco", TacoSpMM(), CSRFormat, {}),
    ("taco-small", TacoSpMM(TacoSchedule(4, 1)), CSRFormat, {}),
    ("triton", BCSRSpMM(), BCSRFormat, {"block_shape": (4, 4)}),
    ("ell", ELLSpMM(), ELLFormat, {}),
    ("sliced-ell", SlicedELLSpMM(), SlicedELLFormat, {"slice_height": 8}),
    ("cell-p1", CELLSpMM(), CELLFormat, {"num_partitions": 1}),
    ("cell-p2", CELLSpMM(), CELLFormat, {"num_partitions": 2}),
    ("cell-capped", CELLSpMM(), CELLFormat, {"num_partitions": 1, "max_widths": 4}),
    ("cell-p3-capped", CELLSpMM(), CELLFormat, {"num_partitions": 3, "max_widths": 8}),
]


@pytest.mark.parametrize("name,kernel,fmt_cls,kwargs", KERNEL_CASES, ids=[c[0] for c in KERNEL_CASES])
def test_kernel_matches_reference(name, kernel, fmt_cls, kwargs, matrix_suite, dense_operand):
    for mat_name, A in matrix_suite.items():
        if kwargs.get("num_partitions", 1) > A.shape[1]:
            continue
        fmt = fmt_cls.from_csr(A, **kwargs)
        B = dense_operand(A.shape[1], 16)
        C = kernel.execute(fmt, B)
        ref = spmm_reference(A, B)
        np.testing.assert_allclose(C, ref, rtol=1e-4, atol=1e-4, err_msg=f"{name} on {mat_name}")


@pytest.mark.parametrize("J", [1, 7, 32, 100])
def test_kernels_handle_various_J(J, matrix_suite, dense_operand):
    A = matrix_suite["power_law"]
    B = dense_operand(A.shape[1], J)
    ref = spmm_reference(A, B)
    for name, kernel, fmt_cls, kwargs in KERNEL_CASES[:4] + KERNEL_CASES[-2:]:
        fmt = fmt_cls.from_csr(A, **kwargs)
        np.testing.assert_allclose(
            kernel.execute(fmt, B), ref, rtol=1e-4, atol=1e-4, err_msg=f"{name} J={J}"
        )


def test_wrong_format_type_rejected(matrix_suite):
    A = matrix_suite["tiny"]
    csr = CSRFormat.from_csr(A)
    cell = CELLFormat.from_csr(A)
    with pytest.raises(TypeError):
        CELLSpMM().plan(csr, 32)
    with pytest.raises(TypeError):
        RowSplitCSRSpMM().plan(cell, 32)
    with pytest.raises(TypeError):
        BCSRSpMM().plan(csr, 32)


def test_wrong_operand_shape_rejected(matrix_suite, dense_operand):
    A = matrix_suite["tiny"]
    fmt = CSRFormat.from_csr(A)
    bad = dense_operand(A.shape[1] + 1, 8)
    with pytest.raises(ValueError):
        RowSplitCSRSpMM().execute(fmt, bad)
    with pytest.raises(ValueError):
        RowSplitCSRSpMM().execute(fmt, np.zeros(A.shape[1], dtype=np.float32))


def test_run_returns_measurement(matrix_suite, dense_operand, device):
    A = matrix_suite["community"]
    fmt = CSRFormat.from_csr(A)
    B = dense_operand(A.shape[1], 32)
    C, m = RowSplitCSRSpMM().run(fmt, B, device)
    assert C.shape == (A.shape[0], 32)
    assert m.time_s > 0


def test_folded_rows_accumulate_correctly(dense_operand):
    """A matrix whose long rows force folding must still produce exact sums."""
    from repro.formats.base import as_csr

    rng = np.random.default_rng(5)
    D = np.zeros((6, 64), dtype=np.float32)
    D[1] = rng.standard_normal(64)  # full row, folded under a narrow cap
    D[3, ::3] = 1.0
    A = as_csr(D)
    fmt = CELLFormat.from_csr(A, num_partitions=1, max_widths=4)
    assert any(b.has_folds for _, b in fmt.iter_buckets())
    B = dense_operand(64, 8)
    np.testing.assert_allclose(
        CELLSpMM().execute(fmt, B), spmm_reference(A, B), rtol=1e-4, atol=1e-4
    )
