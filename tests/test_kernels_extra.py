"""Additional kernel coverage: traffic models, schedules, hybrid panels."""

import numpy as np
import pytest

from repro.baselines.stile import HybridPanelFormat, HybridPanelSpMM, STileBaseline
from repro.formats import CSRFormat, CELLFormat
from repro.kernels import CELLSpMM, RowSplitCSRSpMM, SputnikSpMM, TacoSpMM
from repro.kernels.base import wave_unique_refs
from repro.kernels.taco_spmm import NNZ_PER_WARP_CHOICES, WARPS_PER_BLOCK_CHOICES, TacoSchedule
from repro.matrices import community_graph, power_law_graph, uniform_random_matrix


class TestWaveUniqueRefs:
    def test_single_wave_totals(self, matrix_suite):
        A = matrix_suite["community"]
        unique, refs = wave_unique_refs(A.indptr, A.indices, A.shape[0], A.shape[1])
        assert unique.size == 1
        assert refs[0] == A.nnz
        assert unique[0] == np.unique(A.indices).size

    def test_per_row_waves(self, matrix_suite):
        A = matrix_suite["tiny"]
        unique, refs = wave_unique_refs(A.indptr, A.indices, 1, A.shape[1])
        lengths = np.diff(A.indptr)
        assert list(refs) == list(lengths)
        # each row's indices are distinct, so unique == refs per row
        assert list(unique) == list(lengths)

    def test_unique_bounded_by_refs(self, matrix_suite):
        for A in matrix_suite.values():
            for rpw in (4, 64):
                unique, refs = wave_unique_refs(A.indptr, A.indices, rpw, A.shape[1])
                assert np.all(unique <= refs)

    def test_empty(self):
        u, r = wave_unique_refs(np.zeros(1, np.int64), np.zeros(0, np.int64), 8, 10)
        assert u.size == 0 and r.size == 0


class TestTacoScheduleSpace:
    def test_36_points(self):
        space = TacoSchedule.space()
        assert len(space) == 36
        assert len(set(space)) == 36

    def test_grid_contents(self):
        space = TacoSchedule.space()
        assert {s.nnz_per_warp for s in space} == set(NNZ_PER_WARP_CHOICES)
        assert {s.warps_per_block for s in space} == set(WARPS_PER_BLOCK_CHOICES)

    def test_nnz_per_block(self):
        assert TacoSchedule(16, 8).nnz_per_block == 128

    def test_schedules_change_block_structure(self, matrix_suite):
        A = matrix_suite["community"]
        fmt = CSRFormat.from_csr(A)
        small = TacoSpMM(TacoSchedule(4, 1)).plan(fmt, 32)
        large = TacoSpMM(TacoSchedule(128, 32)).plan(fmt, 32)
        assert small.num_blocks > large.num_blocks


class TestLocalityEffects:
    def test_community_locality_reduces_b_traffic(self):
        """Clustered neighborhoods fetch fewer B rows per wave than uniform
        random sparsity at equal nnz — the signal the cache model prices."""
        # B must exceed L2 for reuse differences to show (8000*512*4 = 16MB)
        n, deg, J = 8000, 16, 512
        comm = community_graph(n, deg, num_communities=40, p_in=0.95, seed=1)
        unif = uniform_random_matrix(n, n, density=comm.nnz / n**2, seed=2)
        k = RowSplitCSRSpMM()
        b_comm = k.plan(CSRFormat.from_csr(comm), J).total_load_bytes
        b_unif = k.plan(CSRFormat.from_csr(unif), J).total_load_bytes
        assert b_comm < b_unif

    def test_partitioning_shrinks_cell_b_traffic_on_big_K(self):
        A = community_graph(20000, 40, num_communities=64, seed=3)
        k = CELLSpMM()
        p1 = k.plan(CELLFormat.from_csr(A, num_partitions=1, max_widths=64), 512)
        p8 = k.plan(CELLFormat.from_csr(A, num_partitions=8, max_widths=64), 512)
        assert p8.total_load_bytes < p1.total_load_bytes

    def test_sputnik_swizzle_traffic_order(self):
        """Sputnik's wave traffic is computed on the sorted row order —
        different from the natural-order kernel on a clustered matrix."""
        A = community_graph(3000, 12, num_communities=30, p_in=0.95, seed=4)
        fmt = CSRFormat.from_csr(A)
        nat = RowSplitCSRSpMM().plan(fmt, 128)
        swz = SputnikSpMM().plan(fmt, 128)
        assert nat.total_load_bytes != swz.total_load_bytes


class TestHybridPanels:
    def test_mixed_panel_kinds(self, device):
        """A matrix with a dense-row region and a uniform region should
        produce both panel kinds."""
        import scipy.sparse as sp

        from repro.formats.base import as_csr
        from repro.matrices import with_dense_rows

        top = uniform_random_matrix(1024, 2048, 0.001, seed=5)
        bottom = with_dense_rows(
            power_law_graph(1024, 20, seed=6), 6, row_density=0.4, seed=7
        )
        bottom = as_csr(bottom[:, :2048].tocsr() if bottom.shape[1] > 2048 else sp.hstack(
            [bottom, sp.csr_matrix((1024, 2048 - bottom.shape[1]), dtype=np.float32)]
        ))
        A = as_csr(sp.vstack([top, bottom]).tocsr())
        prep = STileBaseline(panel_rows=1024, micro_samples=1).prepare(A, 64, device)
        kinds = {p.kind for p in prep.fmt.panels}
        assert len(prep.fmt.panels) == 2
        assert kinds <= {"ell", "csr"}

    def test_hybrid_format_roundtrip(self, device):
        A = power_law_graph(1000, 8, seed=8)
        prep = STileBaseline(panel_rows=256, micro_samples=1).prepare(A, 32, device)
        assert isinstance(prep.fmt, HybridPanelFormat)
        diff = prep.fmt.to_csr() - A
        assert diff.nnz == 0 or abs(diff).max() < 1e-5

    def test_hybrid_kernel_rejects_wrong_format(self, matrix_suite):
        with pytest.raises(TypeError):
            HybridPanelSpMM().plan(CSRFormat.from_csr(matrix_suite["tiny"]), 32)

    def test_from_csr_not_supported(self, matrix_suite):
        with pytest.raises(NotImplementedError):
            HybridPanelFormat.from_csr(matrix_suite["tiny"])
