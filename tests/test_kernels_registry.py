"""Kernel registry: the one method → (Format, Kernel) table."""

import numpy as np
import pytest

import repro
from repro.formats import CELLFormat, CSRFormat, ELLFormat
from repro.formats.base import SparseFormat, as_csr
from repro.gpu import SimulatedDevice
from repro.kernels.base import SpMMKernel
from repro.kernels.registry import (
    KERNEL_REGISTRY,
    OP_REGISTRIES,
    available_methods,
    kernel_for_op,
    resolve,
)
from repro.kernels.sddmm import CELLSDDMM, CSRSDDMM, sddmm_reference
from repro.kernels.spmv import MergeCSRSpMV
from repro.matrices import power_law_graph


class TestRegistry:
    def test_available_methods_sorted_and_complete(self):
        methods = available_methods()
        assert list(methods) == sorted(KERNEL_REGISTRY)
        assert {"cell", "csr", "sputnik", "dgsparse", "taco", "bcsr",
                "ell", "sliced-ell"} == set(methods)

    def test_resolve_returns_classes(self):
        for method in available_methods():
            fmt_cls, kernel_cls = resolve(method)
            assert issubclass(fmt_cls, SparseFormat)
            assert issubclass(kernel_cls, SpMMKernel)

    def test_unknown_method_error_lists_choices(self):
        with pytest.raises(ValueError, match="unknown method 'ellpack'"):
            resolve("ellpack")
        with pytest.raises(ValueError, match="cell"):
            resolve("nope")

    def test_every_entry_runs(self):
        A = power_law_graph(300, 5, seed=2)
        B = np.random.default_rng(0).standard_normal(
            (A.shape[1], 16)
        ).astype(np.float32)
        dense = as_csr(A).toarray() @ B
        for method in available_methods():
            fmt_cls, kernel_cls = resolve(method)
            C, m = kernel_cls().run(
                fmt_cls.from_csr(as_csr(A)), B, SimulatedDevice()
            )
            np.testing.assert_allclose(C, dense, rtol=2e-4, atol=2e-4)
            assert m.time_s > 0

    def test_spmm_consumes_registry(self):
        A = power_law_graph(300, 5, seed=2)
        B = np.random.default_rng(0).standard_normal(
            (A.shape[1], 16)
        ).astype(np.float32)
        C, _ = repro.spmm(A, B, method="sliced-ell")
        np.testing.assert_allclose(C, as_csr(A).toarray() @ B,
                                   rtol=2e-4, atol=2e-4)
        with pytest.raises(ValueError, match="unknown method"):
            repro.spmm(A, B, method="bogus")


class TestOpRegistries:
    """The per-op dispatch tables (sddmm/spmv were previously unreachable
    from the registry)."""

    def test_spmm_table_is_the_legacy_registry(self):
        assert OP_REGISTRIES["spmm"] is KERNEL_REGISTRY
        assert list(available_methods(op="spmm")) == list(available_methods())

    def test_sddmm_and_spmv_methods_listed(self):
        assert set(available_methods(op="sddmm")) == {"sddmm-cell", "sddmm-csr"}
        assert set(available_methods(op="spmv")) == {
            "spmv-merge", "spmv-scalar", "spmv-vector"
        }

    def test_resolve_dispatches_per_op(self):
        for op in OP_REGISTRIES:
            for method in available_methods(op=op):
                fmt_cls, kernel_cls = resolve(method, op=op)
                assert issubclass(fmt_cls, SparseFormat)
                assert issubclass(kernel_cls, SpMMKernel)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op 'conv'"):
            available_methods(op="conv")
        with pytest.raises(ValueError, match="unknown op"):
            resolve("csr", op="conv")

    def test_unknown_method_error_is_op_scoped(self):
        with pytest.raises(ValueError, match="sddmm-cell"):
            resolve("nope", op="sddmm")
        with pytest.raises(ValueError, match="unknown method 'cell'"):
            resolve("cell", op="spmv")  # spmm-only name

    def test_sddmm_entries_run_via_registry(self):
        A = power_law_graph(250, 5, seed=3)
        rng = np.random.default_rng(1)
        U = rng.standard_normal((A.shape[0], 12)).astype(np.float32)
        V = rng.standard_normal((A.shape[1], 12)).astype(np.float32)
        expected = sddmm_reference(A, U, V)
        for method in available_methods(op="sddmm"):
            fmt_cls, kernel_cls = resolve(method, op="sddmm")
            C, m = kernel_cls().run(
                fmt_cls.from_csr(as_csr(A)), (U, V), SimulatedDevice()
            )
            np.testing.assert_allclose(
                C.toarray(), expected.toarray(), rtol=2e-4, atol=2e-4
            )
            assert m.time_s > 0

    def test_spmv_entries_run_via_registry(self):
        A = power_law_graph(250, 5, seed=3)
        x = np.random.default_rng(2).standard_normal(
            A.shape[1]
        ).astype(np.float32)
        expected = np.asarray(as_csr(A) @ x).ravel()
        for method in available_methods(op="spmv"):
            fmt_cls, kernel_cls = resolve(method, op="spmv")
            y, m = kernel_cls().run(
                fmt_cls.from_csr(as_csr(A)), x, SimulatedDevice()
            )
            np.testing.assert_allclose(
                np.asarray(y).ravel(), expected, rtol=2e-4, atol=2e-4
            )
            assert m.time_s > 0


class TestKernelForOp:
    """Format-aware kernel swap used when an op binds to a cached plan."""

    def test_spmm_keeps_plan_kernel(self):
        A = as_csr(power_law_graph(100, 4, seed=4))
        assert kernel_for_op(CELLFormat.from_csr(A), "spmm") is None
        assert kernel_for_op(CSRFormat.from_csr(A), "spmm") is None

    def test_sddmm_matches_format(self):
        A = as_csr(power_law_graph(100, 4, seed=4))
        assert isinstance(kernel_for_op(CELLFormat.from_csr(A), "sddmm"),
                          CELLSDDMM)
        assert isinstance(kernel_for_op(CSRFormat.from_csr(A), "sddmm"),
                          CSRSDDMM)
        assert kernel_for_op(ELLFormat.from_csr(A), "sddmm") is None

    def test_spmv_requires_csr(self):
        A = as_csr(power_law_graph(100, 4, seed=4))
        assert isinstance(kernel_for_op(CSRFormat.from_csr(A), "spmv"),
                          MergeCSRSpMV)
        assert kernel_for_op(CELLFormat.from_csr(A), "spmv") is None
