"""Kernel registry: the one method → (Format, Kernel) table."""

import numpy as np
import pytest

import repro
from repro.formats.base import SparseFormat, as_csr
from repro.gpu import SimulatedDevice
from repro.kernels.base import SpMMKernel
from repro.kernels.registry import KERNEL_REGISTRY, available_methods, resolve
from repro.matrices import power_law_graph


class TestRegistry:
    def test_available_methods_sorted_and_complete(self):
        methods = available_methods()
        assert list(methods) == sorted(KERNEL_REGISTRY)
        assert {"cell", "csr", "sputnik", "dgsparse", "taco", "bcsr",
                "ell", "sliced-ell"} == set(methods)

    def test_resolve_returns_classes(self):
        for method in available_methods():
            fmt_cls, kernel_cls = resolve(method)
            assert issubclass(fmt_cls, SparseFormat)
            assert issubclass(kernel_cls, SpMMKernel)

    def test_unknown_method_error_lists_choices(self):
        with pytest.raises(ValueError, match="unknown method 'ellpack'"):
            resolve("ellpack")
        with pytest.raises(ValueError, match="cell"):
            resolve("nope")

    def test_every_entry_runs(self):
        A = power_law_graph(300, 5, seed=2)
        B = np.random.default_rng(0).standard_normal(
            (A.shape[1], 16)
        ).astype(np.float32)
        dense = as_csr(A).toarray() @ B
        for method in available_methods():
            fmt_cls, kernel_cls = resolve(method)
            C, m = kernel_cls().run(
                fmt_cls.from_csr(as_csr(A)), B, SimulatedDevice()
            )
            np.testing.assert_allclose(C, dense, rtol=2e-4, atol=2e-4)
            assert m.time_s > 0

    def test_spmm_consumes_registry(self):
        A = power_law_graph(300, 5, seed=2)
        B = np.random.default_rng(0).standard_normal(
            (A.shape[1], 16)
        ).astype(np.float32)
        C, _ = repro.spmm(A, B, method="sliced-ell")
        np.testing.assert_allclose(C, as_csr(A).toarray() @ B,
                                   rtol=2e-4, atol=2e-4)
        with pytest.raises(ValueError, match="unknown method"):
            repro.spmm(A, B, method="bogus")
