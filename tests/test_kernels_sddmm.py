"""Tests for the SDDMM kernels (Section 10 kernel-extension)."""

import numpy as np
import pytest

from repro.formats import CELLFormat, CSRFormat
from repro.kernels.sddmm import CELLSDDMM, CSRSDDMM, sddmm_reference
from repro.matrices import power_law_graph


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(0)

    def make(I, Jc, K=16):
        return (
            rng.standard_normal((I, K)).astype(np.float32),
            rng.standard_normal((Jc, K)).astype(np.float32),
        )

    return make


def _dense_check(A, U, V, out):
    expected = A.toarray() * (U @ V.T)
    np.testing.assert_allclose(out.toarray(), expected, rtol=1e-3, atol=1e-3)


class TestReference:
    def test_matches_dense(self, matrix_suite, operands):
        for name, A in matrix_suite.items():
            U, V = operands(*A.shape)
            _dense_check(A, U, V, sddmm_reference(A, U, V))

    def test_preserves_pattern(self, matrix_suite, operands):
        A = matrix_suite["power_law"]
        U, V = operands(*A.shape)
        out = sddmm_reference(A, U, V)
        assert (out != 0).nnz <= A.nnz
        assert out.shape == A.shape

    def test_operand_validation(self, matrix_suite, operands):
        A = matrix_suite["tiny"]
        U, V = operands(*A.shape)
        with pytest.raises(ValueError):
            sddmm_reference(A, U[:-1], V)
        with pytest.raises(ValueError):
            sddmm_reference(A, U, V[:-1])
        with pytest.raises(ValueError):
            sddmm_reference(A, U[:, :3], V)


class TestKernels:
    @pytest.mark.parametrize("P,W", [(1, None), (2, None), (1, 4), (3, 8)])
    def test_cell_sddmm_correct(self, matrix_suite, operands, P, W):
        for name, A in matrix_suite.items():
            if P > A.shape[1]:
                continue
            U, V = operands(*A.shape)
            fmt = CELLFormat.from_csr(A, num_partitions=P, max_widths=W)
            out = CELLSDDMM().execute(fmt, (U, V))
            _dense_check(A, U, V, out)

    def test_csr_sddmm_correct(self, matrix_suite, operands):
        for A in matrix_suite.values():
            U, V = operands(*A.shape)
            out = CSRSDDMM().execute(CSRFormat.from_csr(A), (U, V))
            _dense_check(A, U, V, out)

    def test_plan_stats_sane(self, matrix_suite, device):
        A = matrix_suite["power_law"]
        for kernel, fmt in [
            (CSRSDDMM(), CSRFormat.from_csr(A)),
            (CELLSDDMM(), CELLFormat.from_csr(A)),
        ]:
            st = kernel.plan(fmt, 32)
            assert st.flops >= 2.0 * A.nnz * 32
            assert st.total_load_bytes > 0
            m = device.measure(st)
            assert m.time_s > 0

    def test_wrong_format_rejected(self, matrix_suite):
        A = matrix_suite["tiny"]
        with pytest.raises(TypeError):
            CELLSDDMM().plan(CSRFormat.from_csr(A), 8)
        with pytest.raises(TypeError):
            CSRSDDMM().plan(CELLFormat.from_csr(A), 8)

    def test_cell_regularity_vs_csr_timing(self, device, operands):
        """On a skewed graph the CELL SDDMM's uniform blocks avoid the CSR
        straggler tail — same mechanism as SpMM."""
        A = power_law_graph(6000, 10, seed=4)
        U, V = operands(*A.shape, K=64)
        t_csr = device.measure(CSRSDDMM().plan(CSRFormat.from_csr(A), 64)).time_s
        fmt = CELLFormat.from_csr(A, num_partitions=1, max_widths=32)
        t_cell = device.measure(CELLSDDMM().plan(fmt, 64)).time_s
        assert t_cell < t_csr * 1.5  # competitive or better
