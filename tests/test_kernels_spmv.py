"""Tests for the SpMV kernel family."""

import numpy as np
import pytest

from repro.formats import CSRFormat
from repro.kernels import spmm_reference
from repro.kernels.spmv import MergeCSRSpMV, ScalarCSRSpMV, VectorCSRSpMV
from repro.matrices import power_law_graph, uniform_random_matrix

KERNELS = [ScalarCSRSpMV(), VectorCSRSpMV(), MergeCSRSpMV()]


@pytest.mark.parametrize("kernel", KERNELS, ids=[k.name for k in KERNELS])
def test_spmv_correctness(kernel, matrix_suite):
    rng = np.random.default_rng(0)
    for name, A in matrix_suite.items():
        x = rng.standard_normal((A.shape[1], 1)).astype(np.float32)
        y = kernel.execute(CSRFormat.from_csr(A), x)
        np.testing.assert_allclose(
            y, spmm_reference(A, x), rtol=1e-4, atol=1e-4, err_msg=f"{kernel.name}/{name}"
        )


@pytest.mark.parametrize("kernel", KERNELS, ids=[k.name for k in KERNELS])
def test_spmv_stats_sane(kernel, matrix_suite, device):
    A = matrix_suite["power_law"]
    st = kernel.plan(CSRFormat.from_csr(A))
    assert st.flops == pytest.approx(2.0 * A.nnz)
    assert st.total_load_bytes > 0
    assert device.measure(st).time_s > 0


def test_merge_balances_blocks(matrix_suite):
    A = matrix_suite["dense_rows"]
    st = MergeCSRSpMV().plan(CSRFormat.from_csr(A))
    # all but the last share are identical by construction
    assert np.allclose(st.block_costs[:-1], st.block_costs[0])


def test_scalar_suffers_on_skew(device):
    """The textbook ordering on power-law rows: scalar << vector <= merge."""
    A = power_law_graph(20_000, 12, seed=2)
    fmt = CSRFormat.from_csr(A)
    t = {k.name: device.measure(k.plan(fmt)).time_s for k in KERNELS}
    assert t["spmv-scalar"] > t["spmv-vector"]
    assert t["spmv-merge"] <= t["spmv-scalar"]


def test_vector_wastes_lanes_on_short_uniform_rows(device):
    """On uniformly short rows the warp-per-row kernel underutilizes lanes;
    merge-based stays balanced regardless."""
    A = uniform_random_matrix(20_000, 20_000, density=2e-4, seed=3)  # ~4 nnz/row
    fmt = CSRFormat.from_csr(A)
    vec = VectorCSRSpMV().plan(fmt)
    assert vec.lane_utilization < 0.3
    t_vec = device.measure(vec).time_s
    t_merge = device.measure(MergeCSRSpMV().plan(fmt)).time_s
    assert t_merge < t_vec * 2.0  # merge competitive despite its 2 launches


def test_wrong_format_rejected(matrix_suite):
    from repro.formats import CELLFormat

    cell = CELLFormat.from_csr(matrix_suite["tiny"])
    for k in KERNELS:
        with pytest.raises(TypeError):
            k.plan(cell)
