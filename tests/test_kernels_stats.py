"""Structural-statistics invariants for the SpMM kernels."""

import numpy as np
import pytest

from repro.formats import BCSRFormat, CELLFormat, CSRFormat
from repro.gpu.device import SimulatedDevice, SimulatedOOMError
from repro.kernels import (
    BCSRSpMM,
    CELLSpMM,
    DgSparseSpMM,
    RowSplitCSRSpMM,
    SputnikSpMM,
    TacoSpMM,
)
from repro.matrices import make_gnn_standin, power_law_graph


class TestCSRKernelStats:
    def test_flops_formula(self, matrix_suite):
        A = matrix_suite["power_law"]
        st = RowSplitCSRSpMM().plan(CSRFormat.from_csr(A), 64)
        assert st.flops == pytest.approx(2.0 * A.nnz * 64)

    def test_traffic_scales_with_J(self, matrix_suite):
        A = matrix_suite["community"]
        fmt = CSRFormat.from_csr(A)
        k = RowSplitCSRSpMM()
        b32 = k.plan(fmt, 32).total_load_bytes
        b256 = k.plan(fmt, 256).total_load_bytes
        assert b256 > b32

    def test_c_store_bytes(self, matrix_suite):
        A = matrix_suite["community"]
        st = RowSplitCSRSpMM().plan(CSRFormat.from_csr(A), 64)
        assert st.coalesced_store_bytes == pytest.approx(A.shape[0] * 64 * 4)
        assert st.atomic_store_bytes == 0.0

    def test_sputnik_dispatch_is_lpt(self, matrix_suite):
        A = matrix_suite["power_law"]
        fmt = CSRFormat.from_csr(A)
        assert SputnikSpMM().plan(fmt, 32).lpt_dispatch
        assert not RowSplitCSRSpMM().plan(fmt, 32).lpt_dispatch

    def test_sputnik_output_tiling_multiplies_blocks(self, matrix_suite):
        A = matrix_suite["power_law"]
        fmt = CSRFormat.from_csr(A)
        k = SputnikSpMM(j_tile=64)
        n_small = k.plan(fmt, 64).num_blocks
        n_large = k.plan(fmt, 256).num_blocks
        assert n_large == 4 * n_small

    def test_single_launch_tuned_kernels(self, matrix_suite):
        A = matrix_suite["community"]
        fmt = CSRFormat.from_csr(A)
        assert SputnikSpMM().plan(fmt, 32).num_launches == 1
        assert DgSparseSpMM().plan(fmt, 32).num_launches == 1
        assert RowSplitCSRSpMM().plan(fmt, 32).num_launches == 2  # analysis + compute


class TestTacoStats:
    def test_uniform_blocks(self, matrix_suite):
        A = matrix_suite["power_law"]
        st = TacoSpMM().plan(CSRFormat.from_csr(A), 32)
        # position split: every block except the tail has equal cost
        assert np.allclose(st.block_costs[:-1], st.block_costs[0])

    def test_atomic_output(self, matrix_suite):
        st = TacoSpMM().plan(CSRFormat.from_csr(matrix_suite["community"]), 32)
        assert st.atomic_store_bytes > 0
        assert st.num_launches == 2  # zero-init + compute

    def test_coord_overhead_in_flops(self, matrix_suite):
        A = matrix_suite["community"]
        fmt = CSRFormat.from_csr(A)
        base = TacoSpMM(coord_overhead=0.0).plan(fmt, 32).flops
        heavy = TacoSpMM(coord_overhead=1.0).plan(fmt, 32).flops
        assert heavy == pytest.approx(2 * base)


class TestTritonStats:
    def test_flops_include_padding(self, matrix_suite):
        A = matrix_suite["power_law"]
        fmt = BCSRFormat.from_csr(A, block_shape=(8, 8))
        st = BCSRSpMM().plan(fmt, 32)
        assert st.flops == pytest.approx(2.0 * fmt.num_blocks * 64 * 32)
        assert st.flops > 2.0 * A.nnz * 32  # strictly more than the real work

    def test_oom_on_large_sparse_graph(self):
        """BSR conversion of a reddit-scale graph exceeds the (scaled) DRAM."""
        A = make_gnn_standin("reddit", seed=1)
        fmt = BCSRFormat.from_csr(A, block_shape=(16, 16))
        # Scale device capacity by the dataset's down-scale factor (DESIGN.md)
        from repro.gpu.device import V100
        from repro.matrices import GNN_DATASETS

        scale = GNN_DATASETS["reddit"].scale
        dev = SimulatedDevice(
            spec=V100.with_overrides(dram_bytes=V100.dram_bytes // (scale * scale))
        )
        with pytest.raises(SimulatedOOMError):
            BCSRSpMM().measure(fmt, 512, dev)


class TestCELLStats:
    def test_uniform_block_costs_within_bucket(self, matrix_suite):
        A = matrix_suite["power_law"]
        fmt = CELLFormat.from_csr(A, num_partitions=1)
        k = CELLSpMM()
        for part, bucket in fmt.iter_buckets():
            st = k._bucket_stats(fmt, bucket, 32, part.num_cols)
            if st.block_costs.size > 1:
                assert np.allclose(st.block_costs[:-1], st.block_costs[0])

    def test_fused_single_launch(self, matrix_suite):
        A = matrix_suite["power_law"]
        fmt = CELLFormat.from_csr(A, num_partitions=1)
        st = CELLSpMM(fused=True).plan(fmt, 32)
        assert st.num_launches == 1  # no atomics -> no zero-init launch

    def test_unfused_one_launch_per_bucket(self, matrix_suite):
        A = matrix_suite["power_law"]
        fmt = CELLFormat.from_csr(A, num_partitions=1)
        n_buckets = sum(1 for _ in fmt.iter_buckets())
        st = CELLSpMM(fused=False).plan(fmt, 32)
        assert st.num_launches == n_buckets

    def test_atomic_configs_pay_zero_init(self, matrix_suite):
        A = matrix_suite["power_law"]
        plain = CELLSpMM().plan(CELLFormat.from_csr(A, num_partitions=1), 32)
        multi = CELLSpMM().plan(CELLFormat.from_csr(A, num_partitions=2), 32)
        assert plain.atomic_store_bytes == 0
        assert multi.atomic_store_bytes > 0
        assert multi.num_launches == plain.num_launches + 1

    def test_flops_include_padding(self, matrix_suite):
        A = matrix_suite["dense_rows"]
        fmt = CELLFormat.from_csr(A, num_partitions=1, max_widths=16)
        st = CELLSpMM().plan(fmt, 32)
        assert st.flops == pytest.approx(2.0 * fmt.stored_elements * 32)

    def test_time_decreases_with_better_width_on_skewed_input(self, device):
        """Natural width on a hub-heavy graph is beaten by a sensible cap."""
        A = power_law_graph(4000, 10, seed=4)
        k = CELLSpMM()
        natural = k.measure(CELLFormat.from_csr(A, num_partitions=1), 64, device).time_s
        capped = k.measure(
            CELLFormat.from_csr(A, num_partitions=1, max_widths=32), 64, device
        ).time_s
        assert capped < natural
