"""Tests for matrix generators, GNN stand-ins, the collection, and IO."""

import numpy as np
import pytest

from repro.formats.base import as_csr
from repro.matrices import (
    GNN_DATASETS,
    SuiteSparseLikeCollection,
    banded_matrix,
    block_diagonal_matrix,
    community_graph,
    diagonal_dominant_matrix,
    make_gnn_standin,
    mixture_matrix,
    power_law_graph,
    read_matrix_market,
    rmat_graph,
    uniform_random_matrix,
    with_dense_rows,
    write_matrix_market,
)


class TestGenerators:
    def test_determinism(self):
        for gen in (
            lambda s: power_law_graph(300, 6, seed=s),
            lambda s: community_graph(300, 8, seed=s),
            lambda s: uniform_random_matrix(200, 300, 0.01, seed=s),
            lambda s: banded_matrix(200, 3, seed=s),
            lambda s: rmat_graph(8, 8, seed=s),
            lambda s: mixture_matrix(300, seed=s),
        ):
            a, b = gen(5), gen(5)
            assert (a != b).nnz == 0

    def test_power_law_skew(self):
        A = power_law_graph(2000, 8, seed=1)
        lengths = np.diff(A.indptr)
        assert lengths.max() > 8 * lengths.mean()

    def test_power_law_avg_degree(self):
        A = power_law_graph(3000, 10, seed=2)
        assert A.nnz / A.shape[0] == pytest.approx(10, rel=0.3)

    def test_community_locality(self):
        A = community_graph(1000, 12, num_communities=10, p_in=0.95, seed=3)
        comm = np.repeat(np.arange(10), 100)
        rows = np.repeat(np.arange(1000), np.diff(A.indptr))
        same = comm[rows] == comm[np.minimum(A.indices, 999)]
        assert same.mean() > 0.8

    def test_banded_structure(self):
        A = banded_matrix(100, 2, seed=0)
        rows = np.repeat(np.arange(100), np.diff(A.indptr))
        assert np.abs(rows - A.indices).max() <= 2

    def test_block_diagonal_full_density(self):
        A = block_diagonal_matrix(64, 8, block_density=1.0, seed=0)
        assert A.nnz == 64 * 8

    def test_diagonal_dominant_has_full_diagonal(self):
        A = diagonal_dominant_matrix(100, seed=1)
        assert np.all(A.diagonal() != 0)

    def test_dense_row_injection(self):
        base = uniform_random_matrix(200, 200, 0.01, seed=1)
        heavy = with_dense_rows(base, 2, row_density=0.5, seed=2)
        lengths = np.diff(heavy.indptr)
        assert (lengths >= 90).sum() >= 2

    def test_rmat_size(self):
        A = rmat_graph(9, edge_factor=8, seed=0)
        assert A.shape == (512, 512)

    def test_symmetry_of_graph_generators(self):
        # sparsity pattern is symmetric (values are independently random)
        for A in (power_law_graph(300, 6, seed=4), community_graph(300, 8, seed=4)):
            P = (A != 0).astype(np.int8)
            assert (P != P.T).nnz == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            uniform_random_matrix(10, 10, 0.0)
        with pytest.raises(ValueError):
            power_law_graph(10, -1)
        with pytest.raises(ValueError):
            banded_matrix(10, 0)
        with pytest.raises(ValueError):
            rmat_graph(0)
        with pytest.raises(ValueError):
            block_diagonal_matrix(10, 4, block_density=0.0)


class TestGNNStandins:
    def test_all_specs_generate(self):
        for name in ("cora", "citeseer", "pubmed"):
            A = make_gnn_standin(name, seed=0)
            spec = GNN_DATASETS[name]
            assert A.shape[0] == spec.standin_nodes

    def test_density_matches_table4(self):
        for name in ("cora", "pubmed"):
            A = make_gnn_standin(name, seed=0)
            spec = GNN_DATASETS[name]
            density = A.nnz / (A.shape[0] * A.shape[1])
            assert density == pytest.approx(spec.density, rel=0.25)

    def test_scaling_preserves_density(self):
        spec = GNN_DATASETS["reddit"]
        assert spec.scale > 1
        standin_density = spec.standin_edges / spec.standin_nodes**2
        full_density = spec.edges / spec.nodes**2
        assert standin_density == pytest.approx(full_density, rel=0.05)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_gnn_standin("imaginary")

    def test_seeded_determinism(self):
        a = make_gnn_standin("cora", seed=3)
        b = make_gnn_standin("cora", seed=3)
        assert (a != b).nnz == 0


class TestCollection:
    def test_len_and_iteration(self):
        coll = SuiteSparseLikeCollection(size=9, max_rows=3000)
        entries = list(coll)
        assert len(entries) == len(coll) == 9

    def test_pattern_diversity(self):
        coll = SuiteSparseLikeCollection(size=9, max_rows=3000)
        assert len({e.pattern for e in coll}) == 9

    def test_min_rows_respected(self):
        coll = SuiteSparseLikeCollection(size=6, min_rows=2000, max_rows=4000)
        for e in coll:
            assert e.num_rows >= 1000  # rmat rounds to powers of two below n

    def test_deterministic_entries(self):
        a = SuiteSparseLikeCollection(size=4, seed=5).entry(2)
        b = SuiteSparseLikeCollection(size=4, seed=5).entry(2)
        assert a.name == b.name
        assert (a.matrix != b.matrix).nnz == 0

    def test_index_bounds(self):
        coll = SuiteSparseLikeCollection(size=3)
        with pytest.raises(IndexError):
            coll.entry(3)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SuiteSparseLikeCollection(size=0)
        with pytest.raises(ValueError):
            SuiteSparseLikeCollection(min_rows=100, max_rows=50)


class TestMatrixMarketIO:
    def test_roundtrip_general(self, tmp_path, matrix_suite):
        for name, A in matrix_suite.items():
            path = tmp_path / f"{name}.mtx"
            write_matrix_market(A, path)
            back = read_matrix_market(path)
            diff = back - A
            assert diff.nnz == 0 or abs(diff).max() < 1e-5, name

    def test_roundtrip_symmetric(self, tmp_path):
        A = power_law_graph(100, 5, seed=0)
        # graph generators are symmetric but values differ across the
        # diagonal; symmetrize values for the symmetric writer
        import scipy.sparse as sp

        S = as_csr((A + A.T) / 2)
        path = tmp_path / "sym.mtx"
        write_matrix_market(S, path, symmetry="symmetric")
        back = read_matrix_market(path)
        assert abs(back - S).max() < 1e-5

    def test_header_validation(self, tmp_path):
        bad = tmp_path / "bad.mtx"
        bad.write_text("%%Nonsense\n1 1 0\n")
        with pytest.raises(ValueError):
            read_matrix_market(bad)

    def test_invalid_symmetry_arg(self, tmp_path, tiny_matrix):
        with pytest.raises(ValueError):
            write_matrix_market(tiny_matrix, tmp_path / "x.mtx", symmetry="hermitian")

    def test_empty_matrix(self, tmp_path):
        import scipy.sparse as sp

        A = sp.csr_matrix((4, 5), dtype=np.float32)
        path = tmp_path / "empty.mtx"
        write_matrix_market(A, path)
        back = read_matrix_market(path)
        assert back.shape == (4, 5) and back.nnz == 0
