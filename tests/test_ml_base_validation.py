"""Input-validation coverage for the ML base layer."""

import numpy as np
import pytest

from repro.ml.base import check_array, check_X_y
from repro.ml import GaussianNB


class TestCheckArray:
    def test_accepts_lists(self):
        out = check_array([[1, 2], [3, 4]])
        assert out.dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            check_array(np.ones(5))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_array(np.ones((0, 3)))

    def test_rejects_nan(self):
        X = np.ones((3, 2))
        X[1, 1] = np.nan
        with pytest.raises(ValueError):
            check_array(X)

    def test_rejects_inf(self):
        X = np.ones((3, 2))
        X[0, 0] = np.inf
        with pytest.raises(ValueError):
            check_array(X)


class TestCheckXY:
    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            check_X_y(np.ones((3, 2)), np.ones(4))

    def test_rejects_2d_labels(self):
        with pytest.raises(ValueError):
            check_X_y(np.ones((3, 2)), np.ones((3, 1)))

    def test_passthrough(self):
        X, y = check_X_y([[1.0, 2.0]], ["a"])
        assert X.shape == (1, 2)
        assert y.shape == (1,)


class TestScoreHelper:
    def test_score_equals_accuracy(self, rng):
        X = np.vstack([rng.normal(-3, 1, (30, 2)), rng.normal(3, 1, (30, 2))])
        y = np.array([0] * 30 + [1] * 30)
        model = GaussianNB().fit(X, y)
        from repro.ml import accuracy_score

        assert model.score(X, y) == accuracy_score(y, model.predict(X))
