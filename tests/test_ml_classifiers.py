"""Tests for the remaining classifiers and the ten-model zoo."""

import numpy as np
import pytest

from repro.ml import (
    CLASSIFIER_NAMES,
    GaussianNB,
    GaussianProcessClassifier,
    KNeighborsClassifier,
    LinearSVMClassifier,
    MLPClassifier,
    QuadraticDiscriminantAnalysis,
    RBFSVMClassifier,
    accuracy_score,
    make_classifier_zoo,
    train_test_split,
)


def blobs(rng, n_per=50, centers=((-3, -3), (3, 3))):
    X = np.vstack([rng.normal(c, 1.0, size=(n_per, 2)) for c in centers])
    y = np.repeat(np.arange(len(centers)), n_per)
    return X, y


def xor_data(rng, n=200):
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestKNN:
    def test_separable(self, rng):
        X, y = blobs(rng)
        knn = KNeighborsClassifier(5).fit(X, y)
        assert knn.score(X, y) > 0.95

    def test_k1_memorizes(self, rng):
        X, y = blobs(rng)
        assert KNeighborsClassifier(1).fit(X, y).score(X, y) == 1.0

    def test_k_larger_than_dataset_clamped(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        knn = KNeighborsClassifier(10).fit(X, y)
        assert knn.predict(np.array([[0.4]])).shape == (1,)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(0)


class TestNaiveBayesQDA:
    def test_nb_gaussian_blobs(self, rng):
        X, y = blobs(rng)
        assert GaussianNB().fit(X, y).score(X, y) > 0.95

    def test_qda_learns_quadratic_boundary(self, rng):
        # inner cluster vs surrounding ring: linear models fail, QDA succeeds
        n = 300
        inner = rng.normal(0, 0.5, size=(n, 2))
        angle = rng.uniform(0, 2 * np.pi, n)
        ring = np.column_stack([3 * np.cos(angle), 3 * np.sin(angle)]) + rng.normal(
            0, 0.3, (n, 2)
        )
        X = np.vstack([inner, ring])
        y = np.array([0] * n + [1] * n)
        qda = QuadraticDiscriminantAnalysis().fit(X, y)
        assert qda.score(X, y) > 0.95

    def test_qda_proba_simplex(self, rng):
        X, y = blobs(rng)
        P = QuadraticDiscriminantAnalysis().fit(X, y).predict_proba(X)
        assert np.allclose(P.sum(axis=1), 1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GaussianNB(var_smoothing=0.0)
        with pytest.raises(ValueError):
            QuadraticDiscriminantAnalysis(reg_param=2.0)


class TestSVMs:
    def test_linear_svm_separable(self, rng):
        X, y = blobs(rng)
        svm = LinearSVMClassifier(epochs=40, seed=0).fit(X, y)
        assert svm.score(X, y) > 0.95

    def test_rbf_svm_solves_xor(self, rng):
        X, y = xor_data(rng)
        rbf = RBFSVMClassifier(C=5.0, gamma=2.0).fit(X, y)
        lin = LinearSVMClassifier(epochs=40, seed=0).fit(X, y)
        assert rbf.score(X, y) > 0.9
        assert rbf.score(X, y) > lin.score(X, y)

    def test_decision_function_shape(self, rng):
        X, y = blobs(rng, centers=((-3, 0), (0, 3), (3, 0)))
        svm = LinearSVMClassifier(epochs=20, seed=0).fit(X, y)
        assert svm.decision_function(X).shape == (X.shape[0], 3)

    def test_invalid_C(self):
        with pytest.raises(ValueError):
            LinearSVMClassifier(C=0.0)
        with pytest.raises(ValueError):
            RBFSVMClassifier(C=-1.0)

    def test_rbf_invalid_gamma(self, rng):
        X, y = blobs(rng)
        with pytest.raises(ValueError):
            RBFSVMClassifier(gamma=-1.0).fit(X, y)


class TestMLPAndGP:
    def test_mlp_solves_xor(self, rng):
        X, y = xor_data(rng)
        mlp = MLPClassifier(hidden=32, epochs=150, seed=0).fit(X, y)
        assert mlp.score(X, y) > 0.9

    def test_mlp_proba_simplex(self, rng):
        X, y = blobs(rng)
        P = MLPClassifier(epochs=30, seed=0).fit(X, y).predict_proba(X)
        assert np.allclose(P.sum(axis=1), 1.0)

    def test_gp_separable(self, rng):
        X, y = blobs(rng)
        gp = GaussianProcessClassifier().fit(X, y)
        assert gp.score(X, y) > 0.95

    def test_gp_nonlinear(self, rng):
        X, y = xor_data(rng)
        gp = GaussianProcessClassifier(length_scale=0.5).fit(X, y)
        assert gp.score(X, y) > 0.9

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MLPClassifier(hidden=0)
        with pytest.raises(ValueError):
            GaussianProcessClassifier(length_scale=0.0)


class TestZoo:
    def test_ten_models(self):
        zoo = make_classifier_zoo()
        assert set(zoo) == set(CLASSIFIER_NAMES)
        assert len(CLASSIFIER_NAMES) == 10

    def test_every_model_beats_chance(self, rng):
        X, y = blobs(rng, n_per=80, centers=((-2, -2), (2, 2), (0, 4)))
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.25, seed=0)
        for name, factory in make_classifier_zoo(seed=0).items():
            model = factory().fit(Xtr, ytr)
            acc = accuracy_score(yte, model.predict(Xte))
            assert acc > 0.5, f"{name} scored {acc:.2f}"

    def test_factories_return_fresh_models(self):
        zoo = make_classifier_zoo()
        assert zoo["Random Forest"]() is not zoo["Random Forest"]()
