"""Tests for classification metrics and the paper's similarity measures."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (
    accuracy_score,
    confusion_matrix,
    cosine_similarity,
    f1_score,
    partition_similarity,
    precision_score,
    recall_score,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_none_right(self):
        assert accuracy_score([1, 1], [2, 2]) == 0.0

    def test_partial(self):
        assert accuracy_score([1, 2, 3, 4], [1, 2, 0, 0]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 2], [1])

    def test_empty(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestConfusionMatrix:
    def test_binary(self):
        cm = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert cm.tolist() == [[1, 1], [0, 2]]

    def test_diagonal_sum_is_correct_count(self):
        y = np.array([0, 1, 2, 1, 0])
        p = np.array([0, 1, 1, 1, 2])
        cm = confusion_matrix(y, p)
        assert np.trace(cm) == np.sum(y == p)


class TestMicroMetrics:
    def test_micro_prf_equal_accuracy(self):
        """The Tables 5-6 signature: micro P = R = F1 = accuracy."""
        rng = np.random.default_rng(0)
        y = rng.integers(0, 4, 200)
        p = rng.integers(0, 4, 200)
        acc = accuracy_score(y, p)
        assert precision_score(y, p) == pytest.approx(acc)
        assert recall_score(y, p) == pytest.approx(acc)
        assert f1_score(y, p) == pytest.approx(acc)

    def test_macro_differs_on_imbalanced(self):
        y = [0] * 90 + [1] * 10
        p = [0] * 100
        assert precision_score(y, p, average="macro") < precision_score(y, p, average="micro")

    def test_invalid_average(self):
        with pytest.raises(ValueError):
            precision_score([0, 1], [0, 1], average="weighted")


class TestPartitionSimilarity:
    def test_exact_match(self):
        assert partition_similarity(4, 4) == 1.0

    def test_eq1_formula(self):
        # 1 - |p - p̂| / max(p, p̂)
        assert partition_similarity(2, 4) == pytest.approx(1 - 2 / 4)
        assert partition_similarity(8, 4) == pytest.approx(1 - 4 / 8)

    def test_symmetry(self):
        for a, b in [(1, 32), (2, 8), (4, 4)]:
            assert partition_similarity(a, b) == pytest.approx(partition_similarity(b, a))

    def test_close_counts_score_high(self):
        assert partition_similarity(8, 16) > partition_similarity(1, 16)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            partition_similarity(-1, 4)


class TestCosineSimilarity:
    def test_identical(self):
        v = np.array([1.0, 2.0, 4.0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_scale_invariant(self):
        u = np.array([1.0, 2.0, 3.0])
        assert cosine_similarity(u, 10 * u) == pytest.approx(1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity([1, 2], [1, 2, 3])

    def test_zero_vectors(self):
        assert cosine_similarity([0, 0], [0, 0]) == 1.0
        assert cosine_similarity([0, 0], [1, 0]) == 0.0


@settings(max_examples=50, deadline=None)
@given(
    p=st.integers(1, 64),
    a=st.integers(1, 64),
)
def test_partition_similarity_bounds(p, a):
    s = partition_similarity(p, a)
    assert 0.0 <= s <= 1.0
    assert (s == 1.0) == (p == a)
