"""Tests for scalers, encoders, and model selection."""

import numpy as np
import pytest

from repro.ml import KFold, LabelEncoder, StandardScaler, cross_val_score, train_test_split
from repro.ml.naive_bayes import GaussianNB


class TestStandardScaler:
    def test_zero_mean_unit_var(self, rng):
        X = rng.normal(5.0, 3.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_column_passthrough(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_feature_count_mismatch(self):
        s = StandardScaler().fit(np.ones((5, 3)))
        with pytest.raises(ValueError):
            s.transform(np.ones((5, 4)))


class TestLabelEncoder:
    def test_roundtrip(self):
        y = np.array(["b", "a", "c", "a"])
        enc = LabelEncoder().fit(y)
        codes = enc.transform(y)
        assert list(enc.inverse_transform(codes)) == list(y)

    def test_codes_contiguous(self):
        enc = LabelEncoder()
        codes = enc.fit_transform(np.array([10, 30, 10, 20]))
        assert set(codes) == {0, 1, 2}

    def test_unseen_label_rejected(self):
        enc = LabelEncoder().fit(np.array([1, 2]))
        with pytest.raises(ValueError):
            enc.transform(np.array([3]))

    def test_out_of_range_codes(self):
        enc = LabelEncoder().fit(np.array([1, 2]))
        with pytest.raises(ValueError):
            enc.inverse_transform(np.array([5]))


class TestTrainTestSplit:
    def test_sizes(self, rng):
        X = rng.normal(size=(100, 3))
        y = rng.integers(0, 2, 100)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.2, seed=0)
        assert len(Xte) + len(Xtr) == 100
        assert 10 <= len(Xte) <= 30

    def test_stratification_keeps_both_classes(self, rng):
        X = rng.normal(size=(100, 2))
        y = np.array([0] * 90 + [1] * 10)
        _, _, ytr, yte = train_test_split(X, y, test_size=0.2, seed=3)
        assert set(yte) == {0, 1}
        assert set(ytr) == {0, 1}

    def test_deterministic(self, rng):
        X = rng.normal(size=(50, 2))
        y = rng.integers(0, 2, 50)
        a = train_test_split(X, y, seed=7)
        b = train_test_split(X, y, seed=7)
        assert np.array_equal(a[1], b[1])

    def test_invalid_test_size(self, rng):
        X = rng.normal(size=(10, 2))
        y = rng.integers(0, 2, 10)
        with pytest.raises(ValueError):
            train_test_split(X, y, test_size=1.5)


class TestKFold:
    def test_folds_partition_samples(self):
        seen = []
        for train, test in KFold(n_splits=5, seed=0).split(50):
            assert set(train) & set(test) == set()
            seen.extend(test)
        assert sorted(seen) == list(range(50))

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))

    def test_min_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestCrossValScore:
    def test_learns_separable_problem(self, rng):
        X = np.vstack([rng.normal(-3, 1, (50, 2)), rng.normal(3, 1, (50, 2))])
        y = np.array([0] * 50 + [1] * 50)
        scores = cross_val_score(lambda: GaussianNB(), X, y, n_splits=5, seed=0)
        assert scores.shape == (5,)
        assert scores.mean() > 0.9
