"""Additional coverage for SVMs, GP, MLP internals, and the forest."""

import numpy as np
import pytest

from repro.ml import (
    GaussianProcessClassifier,
    LinearSVMClassifier,
    MLPClassifier,
    RBFSVMClassifier,
    RandomForestClassifier,
)
from repro.ml.svm import RBFSVMClassifier as RBF


def three_blobs(rng, n=40):
    X = np.vstack(
        [
            rng.normal((-4, 0), 1.0, size=(n, 2)),
            rng.normal((4, 0), 1.0, size=(n, 2)),
            rng.normal((0, 5), 1.0, size=(n, 2)),
        ]
    )
    y = np.repeat([0, 1, 2], n)
    return X, y


class TestRBFKernel:
    def test_kernel_diagonal_is_one(self):
        A = np.random.default_rng(0).normal(size=(10, 3))
        K = RBF._rbf(A, A, gamma=0.7)
        assert np.allclose(np.diag(K), 1.0)

    def test_kernel_symmetric_psd(self):
        A = np.random.default_rng(1).normal(size=(20, 4))
        K = RBF._rbf(A, A, gamma=0.3)
        assert np.allclose(K, K.T)
        eig = np.linalg.eigvalsh(K)
        assert eig.min() > -1e-8

    def test_gamma_scale_heuristic(self):
        X = np.random.default_rng(2).normal(size=(50, 5))
        m = RBFSVMClassifier(gamma="scale")
        g = m._gamma_value(X)
        assert g == pytest.approx(1.0 / (5 * X.var()))

    def test_kernel_decays_with_distance(self):
        a = np.zeros((1, 2))
        near = np.array([[0.1, 0.0]])
        far = np.array([[5.0, 0.0]])
        assert RBF._rbf(a, near, 1.0) > RBF._rbf(a, far, 1.0)


class TestMulticlassConsistency:
    """All margin-based models handle 3 classes via one-vs-rest."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: LinearSVMClassifier(epochs=40, seed=0),
            lambda: RBFSVMClassifier(C=2.0),
            lambda: GaussianProcessClassifier(),
            lambda: MLPClassifier(epochs=80, seed=0),
        ],
        ids=["linear-svm", "rbf-svm", "gp", "mlp"],
    )
    def test_three_class_accuracy(self, factory, rng):
        X, y = three_blobs(rng)
        model = factory().fit(X, y)
        assert model.score(X, y) > 0.9
        assert set(model.predict(X)) <= {0, 1, 2}


class TestForestInternals:
    def test_more_trees_do_not_hurt(self, rng):
        X, y = three_blobs(rng)
        Xt, yt = three_blobs(np.random.default_rng(5))
        small = RandomForestClassifier(n_estimators=3, seed=2).fit(X, y).score(Xt, yt)
        big = RandomForestClassifier(n_estimators=40, seed=2).fit(X, y).score(Xt, yt)
        assert big >= small - 0.05

    def test_max_features_validation(self, rng):
        X, y = three_blobs(rng)
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=2, max_features=99, seed=0).fit(X, y)

    def test_single_class_training(self):
        X = np.random.default_rng(0).normal(size=(20, 3))
        y = np.zeros(20, dtype=int)
        rf = RandomForestClassifier(n_estimators=3, seed=0).fit(X, y)
        assert (rf.predict(X) == 0).all()


class TestGPScaling:
    def test_training_cost_grows_superlinearly(self):
        """The O(n^3) Cholesky signature that makes GP the slowest row of
        Table 5 on large training sets."""
        import time

        rng = np.random.default_rng(3)

        def train_time(n):
            X = rng.normal(size=(n, 5))
            y = rng.integers(0, 2, n)
            t0 = time.perf_counter()
            GaussianProcessClassifier().fit(X, y)
            return time.perf_counter() - t0

        t_small = min(train_time(200) for _ in range(3))
        t_big = min(train_time(1200) for _ in range(3))
        assert t_big > 4 * t_small  # superlinear (n^3 would be 216x ideally)
