"""Tests for the CART tree, Random Forest, and AdaBoost."""

import numpy as np
import pytest

from repro.ml import AdaBoostClassifier, DecisionTreeClassifier, RandomForestClassifier


def blobs(rng, n_per=60, centers=((-3, -3), (3, 3), (-3, 3))):
    X = np.vstack([rng.normal(c, 1.0, size=(n_per, 2)) for c in centers])
    y = np.repeat(np.arange(len(centers)), n_per)
    return X, y


class TestDecisionTree:
    def test_fits_training_data_exactly_when_unbounded(self, rng):
        X, y = blobs(rng)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_generalizes_on_blobs(self, rng):
        X, y = blobs(rng)
        Xt, yt = blobs(np.random.default_rng(99))
        tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert tree.score(Xt, yt) > 0.9

    def test_max_depth_limits_nodes(self, rng):
        X, y = blobs(rng)
        small = DecisionTreeClassifier(max_depth=1).fit(X, y)
        big = DecisionTreeClassifier(max_depth=8).fit(X, y)
        assert small.node_count <= 3
        assert big.node_count > small.node_count

    def test_pure_node_is_leaf(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count == 1

    def test_sample_weight_shifts_decision(self):
        # Two overlapping points with different labels: weights decide.
        X = np.array([[0.0], [0.0], [1.0]])
        y = np.array([0, 1, 1])
        heavy0 = DecisionTreeClassifier(max_depth=1).fit(
            X, y, sample_weight=np.array([10.0, 1.0, 1.0])
        )
        heavy1 = DecisionTreeClassifier(max_depth=1).fit(
            X, y, sample_weight=np.array([1.0, 10.0, 1.0])
        )
        assert heavy0.predict(np.array([[0.0]]))[0] == 0
        assert heavy1.predict(np.array([[0.0]]))[0] == 1

    def test_predict_proba_sums_to_one(self, rng):
        X, y = blobs(rng)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        P = tree.predict_proba(X)
        assert np.allclose(P.sum(axis=1), 1.0)
        assert P.shape == (X.shape[0], 3)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.ones((1, 2)))

    def test_negative_sample_weight_rejected(self, rng):
        X, y = blobs(rng)
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X, y, sample_weight=-np.ones(X.shape[0]))

    def test_string_labels(self, rng):
        X, _ = blobs(rng)
        y = np.array((["a"] * 60) + (["b"] * 60) + (["c"] * 60))
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert set(tree.predict(X)) <= {"a", "b", "c"}


class TestRandomForest:
    def test_beats_chance_strongly(self, rng):
        X, y = blobs(rng)
        Xt, yt = blobs(np.random.default_rng(42))
        rf = RandomForestClassifier(n_estimators=20, seed=0).fit(X, y)
        assert rf.score(Xt, yt) > 0.9

    def test_deterministic_given_seed(self, rng):
        X, y = blobs(rng)
        p1 = RandomForestClassifier(n_estimators=5, seed=9).fit(X, y).predict(X)
        p2 = RandomForestClassifier(n_estimators=5, seed=9).fit(X, y).predict(X)
        assert np.array_equal(p1, p2)

    def test_proba_shape_and_simplex(self, rng):
        X, y = blobs(rng)
        rf = RandomForestClassifier(n_estimators=10, seed=0).fit(X, y)
        P = rf.predict_proba(X)
        assert P.shape == (X.shape[0], 3)
        assert np.allclose(P.sum(axis=1), 1.0)
        assert (P >= 0).all()

    def test_invalid_estimator_count(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_handles_class_missing_from_bootstrap(self, rng):
        # tiny minority class: some bootstraps won't sample it
        X = rng.normal(size=(40, 2))
        y = np.array([0] * 38 + [1] * 2)
        X[38:] += 10
        rf = RandomForestClassifier(n_estimators=15, seed=1).fit(X, y)
        assert rf.predict_proba(X).shape == (40, 2)


class TestAdaBoost:
    def test_boosting_improves_over_stump(self, rng):
        X, y = blobs(rng, centers=((-2, 0), (2, 0), (0, 3)))
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        boosted = AdaBoostClassifier(n_estimators=40, seed=0).fit(X, y)
        assert boosted.score(X, y) > stump.score(X, y)

    def test_perfect_weak_learner_short_circuits(self):
        X = np.array([[0.0], [10.0]])
        y = np.array([0, 1])
        ada = AdaBoostClassifier(n_estimators=50, seed=0).fit(X, y)
        assert len(ada.estimators_) == 1
        assert ada.score(X, y) == 1.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier(n_estimators=0)
        with pytest.raises(ValueError):
            AdaBoostClassifier(learning_rate=0.0)

    def test_multiclass_samme(self, rng):
        X, y = blobs(rng)
        ada = AdaBoostClassifier(n_estimators=30, max_depth=2, seed=0).fit(X, y)
        assert ada.score(X, y) > 0.85
