"""Tail-latency attribution: joint stage records, reservoir, exemplars."""

from __future__ import annotations

import pytest

from repro.obs import AttributionCollector, MetricsRegistry, STAGES


def _fill(collector, n=20, slow_every=10):
    """n requests: mostly fast compose-dominated, every ``slow_every``-th
    one slow and queue-dominated."""
    for i in range(n):
        if i % slow_every == slow_every - 1:
            stages = {"queue_wait": 80.0, "compose": 15.0, "launch": 5.0}
        else:
            stages = {"queue_wait": 0.5, "compose": 2.0, "launch": 0.5}
        collector.record(f"req-{i:06d}", stages, shard=f"shard-{i % 2}")


class TestRecording:
    def test_zero_stages_dropped(self):
        c = AttributionCollector()
        c.record("t1", {"compose": 2.0, "retry_backoff": 0.0, "migration": 0})
        (rec,) = c.records()
        assert rec["stages"] == {"compose": 2.0}

    def test_total_defaults_to_stage_sum(self):
        c = AttributionCollector()
        c.record("t1", {"compose": 2.0, "launch": 1.0})
        assert c.records()[0]["total_ms"] == pytest.approx(3.0)

    def test_explicit_total_kept(self):
        c = AttributionCollector()
        c.record("t1", {"compose": 2.0}, total_ms=10.0)
        assert c.records()[0]["total_ms"] == 10.0

    def test_canonical_stages_constant(self):
        assert STAGES == (
            "queue_wait", "compose", "launch", "retry_backoff", "migration"
        )


class TestReservoir:
    def test_bounded_and_deterministic(self):
        a = AttributionCollector(capacity=8, seed=7)
        b = AttributionCollector(capacity=8, seed=7)
        for c in (a, b):
            for i in range(200):
                c.record(f"t{i}", {"compose": float(i)})
        assert a.count == b.count == 200
        assert len(a.records()) == 8
        assert a.records() == b.records()

    def test_different_seed_different_sample(self):
        a = AttributionCollector(capacity=8, seed=1)
        b = AttributionCollector(capacity=8, seed=2)
        for c in (a, b):
            for i in range(200):
                c.record(f"t{i}", {"compose": float(i)})
        assert a.records() != b.records()


class TestPercentileAttribution:
    def test_shares_sum_to_one(self):
        c = AttributionCollector()
        _fill(c)
        for p in (50, 95, 99):
            att = c.percentile_attribution(p)
            assert sum(att["shares"].values()) == pytest.approx(1.0)

    def test_tail_dominated_by_queue_wait(self):
        c = AttributionCollector()
        _fill(c, n=50, slow_every=10)
        att = c.percentile_attribution(95)
        stage, share = att["dominant"]
        assert stage == "queue_wait"
        assert share > 0.5
        assert att["cut_ms"] == pytest.approx(100.0)
        assert att["requests"] == 5

    def test_exemplar_is_slowest_tail_request(self):
        c = AttributionCollector()
        c.record("fast", {"compose": 1.0})
        c.record("slow", {"queue_wait": 50.0})
        c.record("slowest", {"queue_wait": 90.0})
        assert c.percentile_attribution(95)["exemplar"] == "slowest"

    def test_empty_collector(self):
        att = AttributionCollector().percentile_attribution(99)
        assert att["requests"] == 0
        assert att["shares"] == {}
        assert att["dominant"] is None and att["exemplar"] is None

    def test_by_shard_counts_tail_owners(self):
        c = AttributionCollector()
        _fill(c, n=40, slow_every=4)  # slow requests are i % 4 == 3 -> shard-1
        owners = c.by_shard(80)
        assert owners.get("shard-1", 0) > owners.get("shard-0", 0)


class TestRegistryIntegration:
    def test_labeled_histograms_with_exemplars(self):
        registry = MetricsRegistry()
        c = AttributionCollector(registry, prefix="stage")
        c.record("req-000001", {"compose": 2.0, "queue_wait": 0.5})
        h = registry.get('stage_ms{stage="compose"}')
        assert h is not None and h.count == 1
        assert any(
            ex["trace_id"] == "req-000001" for ex in h.exemplars().values()
        )
        total = registry.get("stage_total_ms")
        assert total is not None and total.count == 1

    def test_no_registry_is_fine(self):
        c = AttributionCollector(registry=None)
        c.record(None, {"compose": 1.0})  # untraced request: no exemplar
        assert c.count == 1


class TestSnapshotAndReport:
    def test_snapshot_shape(self):
        c = AttributionCollector()
        _fill(c)
        snap = c.snapshot()
        assert snap["requests"] == 20
        assert snap["retained"] == 20
        assert set(snap["percentiles"]) == {"p50", "p95", "p99"}
        assert "tail_by_shard" in snap

    def test_report_lists_percentiles_and_exemplar(self):
        c = AttributionCollector()
        _fill(c)
        text = c.report()
        assert "p50" in text and "p95" in text and "p99" in text
        assert "dominant:" in text and "exemplar=" in text
        assert "tail by shard" in text

    def test_empty_report(self):
        assert "no attribution records" in AttributionCollector().report()
