"""End-to-end observability: traced serve round-trip + no-op overhead bound."""

import json
import time

import numpy as np
import pytest

from repro.core import LiteForm, generate_training_data
from repro.matrices import SuiteSparseLikeCollection, power_law_graph
from repro.obs import NULL_TRACER, Tracer, tracing
from repro.serve import PlanCache, SpMMRequest, SpMMServer

CHROME_REQUIRED_FIELDS = ("ph", "ts", "dur", "name", "pid", "tid")


@pytest.fixture(scope="module")
def liteform():
    coll = SuiteSparseLikeCollection(size=6, max_rows=2000, seed=11)
    return LiteForm().fit(generate_training_data(coll, J_values=(32,)))


def _requests(n=4, J=32):
    out = []
    for seed in range(1, n + 1):
        A = power_law_graph(400, 6, seed=seed)
        B = np.random.default_rng(seed).standard_normal((A.shape[1], J))
        out.append(SpMMRequest(matrix=A, B=B.astype(np.float32), J=J, name=f"g{seed}"))
    return out


@pytest.fixture(scope="module")
def traced_run(liteform, tmp_path_factory):
    """One traced replay (with a repeat request to force a cache hit),
    exported to disk and reloaded — shared by the round-trip tests."""
    server = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
    requests = _requests(3)
    requests.append(requests[0])  # replayed fingerprint -> cache hit
    with tracing() as tracer:
        server.replay(requests)
    path = tracer.write(tmp_path_factory.mktemp("trace") / "serve_trace.json")
    return tracer, json.loads(path.read_text()), server


class TestTracedServeRoundTrip:
    def test_exported_file_is_valid_chrome_trace(self, traced_run):
        _, loaded, _ = traced_run
        events = loaded["traceEvents"]
        assert len(events) > 0
        for e in events:
            for key in CHROME_REQUIRED_FIELDS:
                assert key in e, f"event {e.get('name')} missing {key}"
            assert e["ph"] == "X"
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0
        assert min(e["ts"] for e in events) == 0.0

    def test_every_request_span_nests_under_replay(self, traced_run):
        tracer, _, _ = traced_run
        (replay,) = tracer.roots()
        assert replay.name == "replay"
        reqs = [s for s in tracer.spans if s.name == "request"]
        assert len(reqs) == 4
        assert all(r.parent_id == replay.span_id for r in reqs)

    def test_compose_stages_nest_in_pipeline_order(self, traced_run):
        tracer, _, _ = traced_run
        misses = [
            s
            for s in tracer.spans
            if s.name == "request" and not s.attributes.get("cache_hit")
        ]
        assert misses, "expected at least one cache-miss request"
        for req in misses:
            children = [c.name for c in tracer.children_of(req)]
            assert children[0] == "cache_lookup"
            assert "compose" in children
            compose = next(
                c for c in tracer.children_of(req) if c.name == "compose"
            )
            stages = [c.name for c in tracer.children_of(compose)]
            if "partition" in stages:  # CELL path: the full Figure-2 pipeline
                assert stages == ["features", "select", "partition",
                                  "tune_width", "build"]
            else:  # fixed-format path skips partition + width tuning
                assert stages == ["features", "select", "build"]

    def test_at_least_one_cell_compose_runs_all_stages(self, traced_run):
        tracer, _, _ = traced_run
        composes = [s for s in tracer.spans if s.name == "compose"]
        full = [
            [c.name for c in tracer.children_of(s)] for s in composes
        ]
        assert any("tune_width" in stages for stages in full), full

    def test_cache_hit_request_has_no_compose_child(self, traced_run):
        tracer, _, _ = traced_run
        hits = [
            s
            for s in tracer.spans
            if s.name == "request" and s.attributes.get("cache_hit")
        ]
        assert len(hits) == 1
        names = [c.name for c in tracer.children_of(hits[0])]
        assert "compose" not in names and "admission" not in names
        assert names == ["cache_lookup", "execute"]

    def test_kernel_launches_nest_under_execute(self, traced_run):
        tracer, _, _ = traced_run
        launches = [s for s in tracer.spans if s.name == "kernel_launch"]
        assert launches
        # launches nest under per-try "attempt" spans, which nest under
        # the request's "execute" span
        attempts = {s.span_id: s for s in tracer.spans if s.name == "attempt"}
        executes = {s.span_id for s in tracer.spans if s.name == "execute"}
        assert all(k.parent_id in attempts for k in launches)
        assert all(a.parent_id in executes for a in attempts.values())

    def test_trace_covers_nearly_all_wall_time(self, traced_run):
        tracer, _, _ = traced_run
        assert tracer.coverage() >= 0.95

    def test_span_tree_timestamps_contain_children(self, traced_run):
        tracer, _, _ = traced_run
        by_id = {s.span_id: s for s in tracer.spans}
        for s in tracer.spans:
            if s.parent_id is None:
                continue
            parent = by_id[s.parent_id]
            assert parent.start_s <= s.start_s
            assert s.end_s <= parent.end_s + 1e-9


class TestDisabledTracerOverhead:
    def test_null_tracer_costs_under_two_percent_of_compose(self, liteform):
        """Acceptance: the no-op tracer adds < 2% overhead to compose_csr.

        Measured as (spans emitted per compose) x (cost of one disabled
        span) against the median compose_csr wall time, which is far more
        stable than differencing two noisy end-to-end timings.
        """
        from repro.formats.base import as_csr
        from repro.obs.trace import set_tracer

        A = as_csr(power_law_graph(400, 6, seed=1))

        liteform.compose_csr(A, 32)  # warm caches/JIT-ish paths
        compose_times = []
        for _ in range(5):
            t0 = time.perf_counter()
            liteform.compose_csr(A, 32)
            compose_times.append(time.perf_counter() - t0)
        compose_s = sorted(compose_times)[len(compose_times) // 2]

        with tracing() as t:
            liteform.compose_csr(A, 32)
        spans_per_compose = len(t.spans)
        assert spans_per_compose >= 3

        previous = set_tracer(NULL_TRACER)
        try:
            n = 20_000
            t0 = time.perf_counter()
            for _ in range(n):
                with NULL_TRACER.span("x", nnz=1):
                    pass
            per_span_s = (time.perf_counter() - t0) / n
        finally:
            set_tracer(previous)

        overhead_s = spans_per_compose * per_span_s
        assert overhead_s < 0.02 * compose_s, (
            f"disabled-tracer overhead {overhead_s * 1e6:.2f}us "
            f"vs compose {compose_s * 1e3:.3f}ms"
        )

    def test_disabled_tracer_records_nothing_during_compose(self, liteform):
        A = power_law_graph(300, 5, seed=2)
        tracer = Tracer()
        liteform.compose(A, 32)  # global tracer is the null tracer here
        assert tracer.spans == ()
        assert NULL_TRACER.spans == ()
