"""Prometheus text-exposition conformance and parser round-trip.

Pins the format-0.0.4 contract of
:meth:`~repro.obs.MetricsRegistry.render_prometheus` — cumulative ``le``
buckets ending in ``+Inf``, ``_sum``/``_count`` per histogram, escaped
label values, one ``# HELP``/``# TYPE`` header per family — and that
:func:`~repro.obs.parse_prometheus` inverts it exactly.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    MetricsRegistry,
    escape_label_value,
    format_labels,
    parse_prometheus,
)
from repro.obs.registry import unescape_label_value

TRICKY = 'a\\b"c\nd'


class TestEscaping:
    @pytest.mark.parametrize("raw", [
        "plain", TRICKY, "\\", '"', "\n", "", 'end\\', "tab\tkept",
    ])
    def test_round_trip(self, raw):
        assert unescape_label_value(escape_label_value(raw)) == raw

    def test_escape_spec(self):
        assert escape_label_value(TRICKY) == 'a\\\\b\\"c\\nd'

    def test_format_labels_sorted_and_escaped(self):
        out = format_labels({"b": "2", "a": TRICKY})
        assert out == '{a="a\\\\b\\"c\\nd",b="2"}'
        assert format_labels({}) == ""


class TestExpositionConformance:
    def _registry(self):
        r = MetricsRegistry()
        r.counter("req_total", "Requests", labels={"path": TRICKY}).inc(3)
        r.counter("req_total", "Requests", labels={"path": "ok"}).inc(1)
        r.gauge("depth", "Queue depth").set(2.5)
        h = r.histogram("lat_ms", "Latency", buckets=(1.0, 10.0))
        h.observe(0.5, exemplar="req-000001")
        h.observe(5.0, exemplar="req-000002")
        h.observe(500.0, exemplar="req-000003")
        return r

    def test_buckets_cumulative_ending_inf(self):
        text = self._registry().render_prometheus()
        assert 'lat_ms_bucket{le="1"} 1' in text
        assert 'lat_ms_bucket{le="10"} 2' in text
        assert 'lat_ms_bucket{le="+Inf"} 3' in text
        assert text.index('le="1"') < text.index('le="10"') < text.index('le="+Inf"')

    def test_sum_and_count_present(self):
        text = self._registry().render_prometheus()
        assert "lat_ms_sum 505.5" in text
        assert "lat_ms_count 3" in text

    def test_labeled_histogram_keeps_labels_on_every_series(self):
        r = MetricsRegistry()
        r.histogram("h_ms", "x", buckets=(1.0,), labels={"stage": "q"}).observe(0.5)
        text = r.render_prometheus()
        assert 'h_ms_bucket{le="1",stage="q"} 1' in text
        assert 'h_ms_sum{stage="q"} 0.5' in text
        assert 'h_ms_count{stage="q"} 1' in text

    def test_help_type_once_per_family(self):
        text = self._registry().render_prometheus()
        assert text.count("# TYPE req_total counter") == 1
        assert text.count("# HELP req_total Requests") == 1
        # Both labeled series still rendered.
        assert text.count("req_total{") == 2

    def test_label_values_escaped_in_output(self):
        text = self._registry().render_prometheus()
        assert 'path="a\\\\b\\"c\\nd"' in text
        assert "\nd\"" not in text  # raw newline must not split the line

    def test_ends_with_newline(self):
        assert self._registry().render_prometheus().endswith("\n")

    def test_exemplar_suffix_opt_in(self):
        plain = self._registry().render_prometheus()
        assert "trace_id=" not in plain
        rich = self._registry().render_prometheus(include_exemplars=True)
        assert '# {trace_id="req-000002"} 5' in rich


class TestParserRoundTrip:
    def _registry(self):
        return TestExpositionConformance()._registry()

    def test_families_and_types(self):
        fams = parse_prometheus(self._registry().render_prometheus())
        assert fams["req_total"]["type"] == "counter"
        assert fams["depth"]["type"] == "gauge"
        assert fams["lat_ms"]["type"] == "histogram"
        assert fams["req_total"]["help"] == "Requests"

    def test_histogram_samples_grouped_under_family(self):
        fams = parse_prometheus(self._registry().render_prometheus())
        samples = fams["lat_ms"]["samples"]
        names = {name for name, _, _ in samples}
        assert names == {"lat_ms_bucket", "lat_ms_sum", "lat_ms_count"}
        inf = next(
            v for name, labels, v in samples
            if name == "lat_ms_bucket" and labels["le"] == "+Inf"
        )
        assert inf == 3.0
        count = next(v for name, _, v in samples if name == "lat_ms_count")
        assert count == 3.0

    def test_label_values_unescaped(self):
        fams = parse_prometheus(self._registry().render_prometheus())
        paths = {
            labels["path"]
            for _, labels, _ in fams["req_total"]["samples"]
        }
        assert paths == {TRICKY, "ok"}

    def test_exemplar_suffix_ignored(self):
        r = self._registry()
        assert (
            parse_prometheus(r.render_prometheus(include_exemplars=True))
            == parse_prometheus(r.render_prometheus())
        )

    def test_counter_values_survive(self):
        fams = parse_prometheus(self._registry().render_prometheus())
        by_path = {
            labels["path"]: v for _, labels, v in fams["req_total"]["samples"]
        }
        assert by_path == {TRICKY: 3.0, "ok": 1.0}

    def test_unparseable_line_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("!!! not a metric line")

    def test_blank_lines_and_unknown_comments_skipped(self):
        fams = parse_prometheus("\n# just a comment\nup 1\n\n")
        assert fams["up"]["samples"] == [("up", {}, 1.0)]
