"""Metrics registry: instruments, percentiles, and expositions."""

import numpy as np
import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, get_registry


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("c_total").inc(-1)

    def test_callback_backed(self):
        state = {"n": 7}
        c = Counter("c_total", callback=lambda: state["n"])
        assert c.value == 7
        state["n"] = 9
        assert c.value == 9
        with pytest.raises(RuntimeError):
            c.inc()

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            Counter("bad name!")


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("g")
        g.set(4.0)
        g.inc(-1.5)
        assert g.value == 2.5

    def test_callback_backed(self):
        g = Gauge("g", callback=lambda: 0.25)
        assert g.value == 0.25
        with pytest.raises(RuntimeError):
            g.set(1)


class TestHistogram:
    def test_streaming_stats_are_exact(self):
        h = Histogram("h_ms")
        values = [0.2, 1.5, 3.0, 40.0, 700.0]
        for v in values:
            h.observe(v)
        assert h.count == len(values)
        assert h.sum == pytest.approx(sum(values))
        assert h.mean == pytest.approx(np.mean(values))
        assert h.max == 700.0
        assert h.min == 0.2

    def test_percentiles_interpolate_within_buckets(self):
        h = Histogram("h_ms", buckets=(1, 2, 4, 8, 16, 32, 64, 128))
        rng = np.random.default_rng(0)
        data = rng.uniform(0.0, 100.0, size=5000)
        for v in data:
            h.observe(v)
        for p in (50, 95, 99):
            exact = np.percentile(data, p)
            est = h.percentile(p)
            # the estimate must land in the right bucket neighborhood
            assert est == pytest.approx(exact, rel=0.5), p
        assert h.percentile(100) == pytest.approx(h.max)
        assert h.percentile(0) >= h.min - 1e-12

    def test_memory_is_constant_in_observations(self):
        h = Histogram("h_ms")
        for i in range(50_000):
            h.observe(float(i % 997))
        assert len(h._counts) == len(h.bounds) + 1
        assert h.count == 50_000

    def test_summary_contract(self):
        h = Histogram("h_ms")
        h.observe(1.0)
        s = h.summary()
        assert set(s) == {"p50", "p95", "p99", "mean", "max"}

    def test_empty_histogram(self):
        h = Histogram("h_ms")
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0 and h.max == 0.0

    def test_bucket_counts_are_cumulative(self):
        h = Histogram("h_ms", buckets=(1, 10, 100))
        for v in (0.5, 5, 50, 500):
            h.observe(v)
        assert h.bucket_counts() == {"1": 1, "10": 2, "100": 3, "+Inf": 4}

    def test_rejects_bad_percentile_and_buckets(self):
        h = Histogram("h_ms")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            Histogram("h2_ms", buckets=())
        with pytest.raises(ValueError):
            Histogram("h3_ms", buckets=(1.0, float("inf")))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("a_total") is r.counter("a_total")
        assert r.histogram("h_ms") is r.histogram("h_ms")

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ValueError):
            r.gauge("x")

    def test_callback_rebinds_on_reregistration(self):
        r = MetricsRegistry()
        r.counter("x", callback=lambda: 1)
        r.counter("x", callback=lambda: 2)
        assert r.get("x").value == 2

    def test_snapshot_shapes(self):
        r = MetricsRegistry()
        r.counter("c_total").inc(3)
        r.gauge("g").set(0.5)
        h = r.histogram("h_ms")
        h.observe(2.0)
        snap = r.snapshot()
        assert snap["c_total"] == 3
        assert snap["g"] == 0.5
        assert snap["h_ms"]["count"] == 1
        assert set(snap["h_ms"]) >= {"count", "sum", "p50", "p95", "p99",
                                     "mean", "max", "buckets"}

    def test_prometheus_exposition(self):
        r = MetricsRegistry()
        r.counter("req_total", "Requests").inc(2)
        h = r.histogram("lat_ms", buckets=(1, 10))
        h.observe(0.5)
        h.observe(5.0)
        text = r.render_prometheus()
        assert "# TYPE req_total counter" in text
        assert "req_total 2" in text
        assert '# HELP req_total Requests' in text
        assert 'lat_ms_bucket{le="1"} 1' in text
        assert 'lat_ms_bucket{le="+Inf"} 2' in text
        assert "lat_ms_count 2" in text
        assert text.endswith("\n")

    def test_reset_forgets_instruments(self):
        r = MetricsRegistry()
        r.counter("x").inc()
        r.reset()
        assert r.names() == ()

    def test_global_registry_is_shared_and_has_pipeline_metrics(self):
        import repro.core.pipeline  # noqa: F401 - registers compose metrics

        r = get_registry()
        assert r is get_registry()
        assert r.get("compose_total") is not None
        assert r.get("compose_overhead_ms") is not None


class TestHistogramPercentileBoundaries:
    def _hist(self, *values, buckets=(1.0, 10.0, 100.0)):
        h = Histogram("b_ms", buckets=buckets)
        for v in values:
            h.observe(v)
        return h

    def test_empty_histogram_is_zero(self):
        h = self._hist()
        assert h.percentile(0) == 0.0
        assert h.percentile(50) == 0.0
        assert h.percentile(100) == 0.0

    def test_out_of_range_raises(self):
        h = self._hist(1.0)
        with pytest.raises(ValueError):
            h.percentile(-0.1)
        with pytest.raises(ValueError):
            h.percentile(100.1)

    def test_single_observation_all_percentiles(self):
        h = self._hist(7.0)
        for p in (0, 1, 50, 99, 100):
            assert h.percentile(p) == pytest.approx(7.0)

    def test_p0_and_p100_clamp_to_observed_extremes(self):
        h = self._hist(0.5, 5.0, 50.0)
        assert h.percentile(0) == pytest.approx(0.5)
        assert h.percentile(100) == pytest.approx(50.0)

    def test_value_beyond_last_finite_bucket(self):
        h = self._hist(0.5, 99_999.0)
        # The overflow lands in the implicit +Inf bucket; the estimate
        # must clamp to the observed max, never report a bucket edge.
        assert h.percentile(100) == pytest.approx(99_999.0)
        assert h.bucket_counts()["+Inf"] == 2
        assert h.bucket_counts()["100"] == 1

    def test_estimates_bounded_by_min_max(self):
        h = self._hist(2.0, 3.0, 4.0, 60.0)
        for p in (0, 25, 50, 75, 100):
            assert h.min <= h.percentile(p) <= h.max


class TestLatencySeriesReservoir:
    def _series(self, n, seed=0, max_samples=64):
        from repro.serve.metrics import LatencySeries

        s = LatencySeries(max_samples=max_samples, seed=seed)
        rng = np.random.default_rng(99)
        for v in rng.exponential(5.0, size=n):
            s.add(float(v))
        return s

    def test_deterministic_under_fixed_seed(self):
        a = self._series(5000, seed=3)
        b = self._series(5000, seed=3)
        assert np.array_equal(a.values, b.values)
        assert a.summary() == b.summary()

    def test_exact_scalars_survive_sampling(self):
        s = self._series(5000)
        assert len(s) == 5000
        assert len(s.values) == 64
        # count/mean/max are streamed exactly, not sampled.
        rng = np.random.default_rng(99)
        values = rng.exponential(5.0, size=5000)
        assert s.mean == pytest.approx(values.mean())
        assert s.max == pytest.approx(values.max())

    def test_no_sampling_below_capacity(self):
        s = self._series(50, max_samples=64)
        assert len(s.values) == 50
        assert s.percentile(100) == pytest.approx(s.max)
