"""SLO specs and multi-window burn-rate alerting.

The burn-rate numbers are hand-computable: with an availability target
of 0.9 the error budget is 0.1, so a window whose bad fraction is 0.3
burns at 3x.  Policies fire only when *both* the long and the short
window exceed the factor, on a rising edge.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    Alert,
    BurnRatePolicy,
    MetricsRegistry,
    SLOEngine,
    SLOSpec,
    Tracer,
    default_policies,
    default_slos,
)


class TestSLOSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLOSpec("x", "throughput", 0.9)
        with pytest.raises(ValueError):
            SLOSpec("x", "availability", 1.0)
        with pytest.raises(ValueError):
            SLOSpec("x", "availability", 0.0)
        with pytest.raises(ValueError):
            SLOSpec("x", "latency", 0.9)  # needs threshold_ms

    def test_error_budget(self):
        assert SLOSpec("x", "availability", 0.99).error_budget == pytest.approx(0.01)

    def test_classify_availability(self):
        spec = SLOSpec("x", "availability", 0.9)
        assert spec.classify(ok=True, latency_ms=None, deadline_hit=None) is True
        assert spec.classify(ok=False, latency_ms=None, deadline_hit=None) is False

    def test_classify_latency(self):
        spec = SLOSpec("x", "latency", 0.9, threshold_ms=10.0)
        assert spec.classify(ok=True, latency_ms=5.0, deadline_hit=None) is True
        assert spec.classify(ok=True, latency_ms=15.0, deadline_hit=None) is False
        # A failed attempt is bad regardless of how fast it failed.
        assert spec.classify(ok=False, latency_ms=1.0, deadline_hit=None) is False
        # No latency info on a success: not applicable.
        assert spec.classify(ok=True, latency_ms=None, deadline_hit=None) is None

    def test_classify_deadline(self):
        spec = SLOSpec("x", "deadline", 0.9)
        assert spec.classify(ok=True, latency_ms=None, deadline_hit=True) is True
        assert spec.classify(ok=True, latency_ms=None, deadline_hit=False) is False
        assert spec.classify(ok=True, latency_ms=None, deadline_hit=None) is None


class TestDefaults:
    def test_default_policies_preserve_sre_ratios(self):
        page, ticket = default_policies(1000.0)
        assert page.severity == "page" and page.factor == 14.4
        assert page.long_window_ms / page.short_window_ms == pytest.approx(12.0)
        assert ticket.severity == "ticket" and ticket.factor == 6.0
        assert ticket.long_window_ms == pytest.approx(6000.0)

    def test_default_slos_cover_all_signals(self):
        specs = default_slos(latency_threshold_ms=25.0)
        assert {s.signal for s in specs} == {"availability", "latency", "deadline"}
        latency = next(s for s in specs if s.signal == "latency")
        assert latency.threshold_ms == 25.0


def _engine(**kwargs):
    """One availability SLO (budget 0.1) and one 2x policy with a 100 ms
    long / 10 ms short window — small enough to reason about by hand."""
    return SLOEngine(
        specs=[SLOSpec("avail", "availability", 0.9)],
        policies=[BurnRatePolicy("page", 2.0, long_window_ms=100.0,
                                 short_window_ms=10.0)],
        **kwargs,
    )


class TestBurnRateAlerting:
    def test_steady_good_traffic_never_fires(self):
        engine = _engine()
        for t in range(0, 200, 5):
            assert engine.record(float(t), ok=True) == []
        assert engine.alerts == ()

    def test_fires_when_both_windows_breach(self):
        engine = _engine()
        for t in (0, 10, 20, 30, 40, 50):
            engine.record(float(t), ok=True)
        # Bad burst.  At t=60 the long window burns 1/7/0.1 = 1.43x (< 2);
        # at t=65 it burns 2/8/0.1 = 2.5x and the short window (>= 55 ms)
        # is all-bad at 10x, so the alert fires exactly there.
        assert engine.record(60.0, ok=False) == []
        fired = engine.record(65.0, ok=False)
        assert [a.severity for a in fired] == ["page"]
        alert = fired[0]
        assert alert.slo == "avail"
        assert alert.fired_at_ms == 65.0
        assert alert.burn_rate_long == pytest.approx(2.5)
        assert alert.burn_rate_short == pytest.approx(10.0)
        assert alert.cumulative_sli == pytest.approx(6 / 8)

    def test_alert_leads_cumulative_breach(self):
        """The point of burn-rate alerting: the page fires while the
        cumulative SLI is still above the 0.9 target."""
        engine = _engine()
        for t in (0, 10, 20, 30, 40, 50):
            engine.record(float(t), ok=True)
        engine.record(60.0, ok=False)
        engine.record(65.0, ok=False)
        (alert,) = engine.alerts
        assert alert.cumulative_sli == pytest.approx(0.75)
        assert alert.cumulative_sli < 0.9  # small sample: already dipped
        # With a larger good history the lead is strict:
        engine2 = _engine()
        for t in range(0, 600, 10):
            engine2.record(float(t), ok=True)
        engine2.record(605.0, ok=False)
        engine2.record(608.0, ok=False)
        engine2.record(609.0, ok=False)
        assert engine2.alerts
        assert engine2.alerts[0].cumulative_sli > 0.9
        assert engine2.cumulative_sli("avail") > 0.9  # never breached

    def test_rising_edge_no_refire_while_breaching(self):
        engine = _engine()
        for t in (0.0, 1.0, 2.0, 3.0):
            engine.record(t, ok=False)
        assert len(engine.alerts) == 1

    def test_refires_after_recovery(self):
        engine = _engine()
        for t in (0.0, 1.0, 2.0):
            engine.record(t, ok=False)
        assert len(engine.alerts) == 1
        # Recovery: enough good traffic that both windows drop below 2x
        # (the rising edge re-arms), then a second storm after the good
        # history has aged out of the long window.
        for t in range(10, 150, 2):
            engine.record(float(t), ok=True)
        for t in (300.0, 301.0, 302.0):
            engine.record(t, ok=False)
        assert len(engine.alerts) == 2

    def test_short_window_gates_stale_history(self):
        """Old badness alone (long window) must not page: the short
        window requires the condition to still be happening."""
        engine = _engine()
        engine.record(0.0, ok=False)
        engine.record(1.0, ok=False)
        assert len(engine.alerts) == 1  # the storm itself
        for t in range(20, 90, 2):  # bad events age past the short window
            engine.record(float(t), ok=True)
        assert len(engine.alerts) == 1


class TestEmission:
    def test_registry_counter_labeled_by_slo_and_severity(self):
        registry = MetricsRegistry()
        engine = _engine(registry=registry)
        for t in (0.0, 1.0, 2.0):
            engine.record(t, ok=False)
        counter = registry.get('slo_alerts_total{severity="page",slo="avail"}')
        assert counter is not None and counter.value == 1

    def test_tracer_span_emitted(self):
        tracer = Tracer()
        engine = _engine(tracer=tracer)
        for t in (0.0, 1.0, 2.0):
            engine.record(t, ok=False)
        spans = [s for s in tracer.spans if s.name == "slo_alert"]
        assert len(spans) == 1
        assert spans[0].attributes["slo"] == "avail"
        assert spans[0].attributes["severity"] == "page"


class TestSnapshotAndReport:
    def test_snapshot_shape(self):
        engine = _engine()
        engine.record(0.0, ok=True)
        engine.record(1.0, ok=False)
        snap = engine.snapshot()
        row = snap["slos"]["avail"]
        assert row["sli"] == pytest.approx(0.5)
        assert row["met"] is False
        assert row["good"] == 1 and row["bad"] == 1
        assert row["budget_consumed"] == pytest.approx(0.5 / 0.1)
        assert isinstance(snap["alerts"], list)
        assert all(isinstance(a, dict) for a in snap["alerts"])

    def test_alert_as_dict_round_trip(self):
        alert = Alert("a", "page", 1.0, 3.0, 4.0, 2.0, 0.95)
        assert Alert(**alert.as_dict()) == alert

    def test_report_mentions_alerts(self):
        engine = _engine()
        assert "alerts: none" in engine.report()
        for t in (0.0, 1.0, 2.0):
            engine.record(t, ok=False)
        text = engine.report()
        assert "[page] avail" in text
        assert "sli-at-fire" in text
