"""Tracer behaviour: nesting, export, global installation, no-op cost."""

import json
import threading
import time

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)
from repro.obs.trace import NULL_SPAN


class TestSpans:
    def test_nesting_records_parent_ids(self):
        t = Tracer()
        with t.span("outer") as outer:
            with t.span("inner"):
                pass
        inner = next(s for s in t.spans if s.name == "inner")
        assert inner.parent_id == outer.span_id
        assert next(s for s in t.spans if s.name == "outer").parent_id is None

    def test_sibling_spans_share_parent(self):
        t = Tracer()
        with t.span("root"):
            with t.span("a"):
                pass
            with t.span("b"):
                pass
        a, b = (next(s for s in t.spans if s.name == n) for n in "ab")
        assert a.parent_id == b.parent_id
        assert a.start_s <= b.start_s

    def test_attributes_at_open_and_via_set(self):
        t = Tracer()
        with t.span("s", matrix="cora") as s:
            s.set(buckets=3)
        (span,) = t.spans
        assert span.attributes == {"matrix": "cora", "buckets": 3}

    def test_exception_marks_span_and_still_finishes(self):
        t = Tracer()
        try:
            with t.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        (span,) = t.spans
        assert span.end_s is not None
        assert span.attributes["error"] == "ValueError"

    def test_durations_are_monotonic_wall_time(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                time.sleep(0.002)
        inner = next(s for s in t.spans if s.name == "inner")
        outer = next(s for s in t.spans if s.name == "outer")
        assert inner.duration_s >= 0.002
        assert outer.duration_s >= inner.duration_s

    def test_threads_record_independent_stacks(self):
        t = Tracer()

        def worker():
            with t.span("thread_root"):
                with t.span("thread_child"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        with t.span("main_root"):
            for th in threads:
                th.start()
            for th in threads:
                th.join()
        roots = [s for s in t.spans if s.parent_id is None]
        # thread spans must not nest under the main thread's active span
        assert sum(s.name == "thread_root" for s in roots) == 4
        main_tid = next(s.tid for s in roots if s.name == "main_root")
        by_id = {s.span_id: s for s in t.spans}
        for child in (s for s in t.spans if s.name == "thread_child"):
            assert child.tid != main_tid
            assert child.tid == by_id[child.parent_id].tid

    def test_reset_drops_finished_spans(self):
        t = Tracer()
        with t.span("x"):
            pass
        t.reset()
        assert t.spans == ()


class TestChromeExport:
    def test_required_fields_and_relative_timestamps(self):
        t = Tracer()
        with t.span("outer", k="v"):
            with t.span("inner"):
                pass
        trace = t.chrome_trace()
        events = trace["traceEvents"]
        assert len(events) == 2
        for e in events:
            for key in ("ph", "ts", "dur", "name", "pid", "tid"):
                assert key in e, key
            assert e["ph"] == "X"
            assert e["ts"] >= 0.0
        assert min(e["ts"] for e in events) == 0.0

    def test_write_round_trips_as_json(self, tmp_path):
        t = Tracer()
        with t.span("s", nnz=10):
            pass
        path = t.write(tmp_path / "trace.json")
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"][0]["name"] == "s"
        assert loaded["traceEvents"][0]["args"] == {"nnz": 10}

    def test_numpy_attributes_are_jsonable(self, tmp_path):
        import numpy as np

        t = Tracer()
        with t.span("s", count=np.int64(3), frac=np.float64(0.5)):
            pass
        path = t.write(tmp_path / "trace.json")
        args = json.loads(path.read_text())["traceEvents"][0]["args"]
        assert args == {"count": 3, "frac": 0.5}


class TestSummaries:
    def test_flame_summary_lists_each_name_once(self):
        t = Tracer()
        for _ in range(3):
            with t.span("stage"):
                pass
        text = t.flame_summary()
        assert text.count("stage") == 1
        assert "count" in text and "self_ms" in text

    def test_flame_summary_empty(self):
        assert "no spans" in Tracer().flame_summary()

    def test_coverage_full_when_one_root_covers_all(self):
        t = Tracer()
        with t.span("root"):
            with t.span("child"):
                time.sleep(0.001)
        assert t.coverage() == 1.0

    def test_coverage_sees_gaps_between_roots(self):
        t = Tracer()
        with t.span("a"):
            time.sleep(0.002)
        time.sleep(0.02)
        with t.span("b"):
            time.sleep(0.002)
        assert t.coverage() < 0.9


class TestGlobalTracer:
    def test_default_is_null_tracer(self):
        assert isinstance(get_tracer(), (NullTracer, Tracer))

    def test_set_and_restore(self):
        t = Tracer()
        previous = set_tracer(t)
        try:
            assert get_tracer() is t
        finally:
            set_tracer(previous)
        assert get_tracer() is previous

    def test_tracing_context_restores_previous(self):
        before = get_tracer()
        with tracing() as t:
            assert get_tracer() is t
            with get_tracer().span("inside"):
                pass
        assert get_tracer() is before
        assert any(s.name == "inside" for s in t.spans)

    def test_null_tracer_is_free_of_state(self):
        span = NULL_TRACER.span("anything", key=1)
        assert span is NULL_SPAN
        with span as s:
            assert s.set(a=1) is s
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.spans == ()
