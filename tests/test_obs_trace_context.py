"""Distributed trace-context propagation and multi-lane trace merging.

The single-tracer mechanics (nesting, export, flame summary) live in
``test_obs_trace.py``; these tests pin the *distributed* layer — one
:class:`~repro.obs.TraceContext` minted at an ingress tags every span a
request touches, across tracers, and :func:`~repro.obs.merge_traces`
stitches the per-component tracers into one Perfetto file whose lanes
share a time origin.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.obs import (
    NullTracer,
    TraceContext,
    Tracer,
    merge_traces,
    mint_trace_id,
    trace_ids_by_lane,
    write_merged,
)


class TestTraceContext:
    def test_mint_is_unique_and_prefixed(self):
        a = TraceContext.mint("req")
        b = TraceContext.mint("req")
        assert a.trace_id != b.trace_id
        assert a.trace_id.startswith("req-")
        assert a.parent_span_id is None

    def test_mint_trace_id_function(self):
        assert mint_trace_id("x").startswith("x-")
        assert mint_trace_id() != mint_trace_id()

    def test_child_reparents_same_trace(self):
        ctx = TraceContext.mint("req")
        child = ctx.child(42)
        assert child.trace_id == ctx.trace_id
        assert child.parent_span_id == 42
        assert ctx.parent_span_id is None  # original untouched

    def test_immutable(self):
        ctx = TraceContext.mint()
        with pytest.raises(dataclasses.FrozenInstanceError):
            ctx.trace_id = "other"


class TestSpanTagging:
    def test_root_span_carries_ctx_trace_id(self):
        t = Tracer()
        ctx = TraceContext.mint("req")
        with t.span("serve", ctx=ctx):
            pass
        assert t.spans[0].trace_id == ctx.trace_id

    def test_children_inherit_without_explicit_ctx(self):
        t = Tracer()
        ctx = TraceContext.mint("req")
        with t.span("serve", ctx=ctx):
            with t.span("compose"):
                with t.span("kernel_launch"):
                    pass
        assert {s.trace_id for s in t.spans} == {ctx.trace_id}

    def test_sibling_roots_stay_untagged(self):
        t = Tracer()
        with t.span("a", ctx=TraceContext.mint()):
            pass
        with t.span("b"):
            pass
        by_name = {s.name: s for s in t.spans}
        assert by_name["a"].trace_id is not None
        assert by_name["b"].trace_id is None

    def test_cross_lane_link_attribute(self):
        """A root span opened with a re-parented ctx records the causal
        link into the originating tracer's lane."""
        frontend, shard = Tracer("frontend"), Tracer("shard-0")
        ctx = TraceContext.mint("req")
        with frontend.span("ingress", ctx=ctx) as ingress:
            pass
        with shard.span("serve", ctx=ctx.child(ingress.span_id)):
            pass
        assert shard.spans[0].attributes["link_span_id"] == ingress.span_id
        assert shard.spans[0].trace_id == ctx.trace_id

    def test_null_tracer_accepts_ctx(self):
        with NullTracer().span("x", ctx=TraceContext.mint()) as s:
            s.set(whatever=1)


class TestMergeTraces:
    def _two_lanes(self):
        frontend, shard = Tracer("frontend"), Tracer("shard-0")
        ctx = TraceContext.mint("req")
        with frontend.span("ingress", ctx=ctx):
            pass
        with shard.span("serve", ctx=ctx):
            with shard.span("kernel_launch"):
                pass
        return ctx, {"frontend": frontend, "shard-0": shard}

    def test_one_pid_lane_per_tracer(self):
        _, lanes = self._two_lanes()
        trace = merge_traces(lanes)
        events = trace["traceEvents"]
        names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e["name"] == "process_name"
        }
        assert names == {0: "frontend", 1: "shard-0"}
        assert {e["pid"] for e in events} == {0, 1}

    def test_shared_time_origin(self):
        _, lanes = self._two_lanes()
        spans = [e for e in merge_traces(lanes)["traceEvents"] if e["ph"] == "X"]
        assert min(s["ts"] for s in spans) == 0.0
        assert all(s["ts"] >= 0.0 for s in spans)

    def test_trace_id_travels_in_args(self):
        ctx, lanes = self._two_lanes()
        spans = [e for e in merge_traces(lanes)["traceEvents"] if e["ph"] == "X"]
        tagged = [s for s in spans if s["args"].get("trace_id") == ctx.trace_id]
        assert len(tagged) == 3  # ingress + serve + inherited kernel_launch

    def test_trace_ids_by_lane(self):
        ctx, lanes = self._two_lanes()
        ids = trace_ids_by_lane(lanes)
        assert ids["frontend"] == {ctx.trace_id}
        assert ids["shard-0"] == {ctx.trace_id}

    def test_write_merged_round_trips_json(self, tmp_path):
        _, lanes = self._two_lanes()
        path = write_merged(lanes, tmp_path / "merged.json")
        loaded = json.loads(path.read_text())
        assert loaded == merge_traces(lanes)
        assert loaded["displayTimeUnit"] == "ms"

    def test_empty_lanes(self):
        assert merge_traces({})["traceEvents"] == []
        assert trace_ids_by_lane({"a": Tracer()}) == {"a": set()}
