"""Hypothesis property tests on cross-module invariants."""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.core import build_buckets, matrix_cost_profiles
from repro.formats import CELLFormat, CSRFormat
from repro.formats.base import as_csr
from repro.gpu import SimulatedDevice
from repro.kernels import CELLSpMM, RowSplitCSRSpMM, spmm_reference

DEVICE = SimulatedDevice()


@st.composite
def graphs(draw):
    n = draw(st.integers(8, 120))
    seed = draw(st.integers(0, 2**31 - 1))
    density = draw(st.floats(0.005, 0.15))
    rng = np.random.default_rng(seed)
    nnz = max(1, int(n * n * density))
    r = rng.integers(0, n, nnz)
    c = rng.integers(0, n, nnz)
    v = rng.standard_normal(nnz).astype(np.float32)
    v[v == 0] = 1.0
    return as_csr(sp.csr_matrix((v, (r, c)), shape=(n, n)))


@settings(max_examples=25, deadline=None)
@given(A=graphs(), J=st.sampled_from([1, 8, 33]))
def test_cell_spmm_equals_csr_spmm_numerically(A, J):
    """Any two kernels must compute the same C (format independence)."""
    rng = np.random.default_rng(0)
    B = rng.standard_normal((A.shape[1], J)).astype(np.float32)
    ref = spmm_reference(A, B)
    c1 = RowSplitCSRSpMM().execute(CSRFormat.from_csr(A), B)
    c2 = CELLSpMM().execute(CELLFormat.from_csr(A, num_partitions=1, max_widths=4), B)
    np.testing.assert_allclose(c1, ref, rtol=1e-3, atol=1e-3)
    np.testing.assert_allclose(c2, ref, rtol=1e-3, atol=1e-3)


@settings(max_examples=25, deadline=None)
@given(A=graphs(), J=st.sampled_from([16, 128]))
def test_alg3_choice_is_feasible_and_costed(A, J):
    prof = matrix_cost_profiles(A, 1)[0]
    if not prof.num_nonempty_rows:
        return
    r = build_buckets(prof, J)
    assert 0 <= r.max_exp <= prof.natural_max_exp
    assert r.cost == prof.cost(r.max_exp, J)
    # the choice is never worse than both extremes
    assert r.cost <= max(prof.cost(0, J), prof.cost(prof.natural_max_exp, J))


@settings(max_examples=20, deadline=None)
@given(A=graphs(), J=st.sampled_from([16, 64]))
def test_simulated_time_positive_and_deterministic(A, J):
    fmt = CELLFormat.from_csr(A, num_partitions=1)
    t1 = CELLSpMM().measure(fmt, J, DEVICE).time_s
    t2 = CELLSpMM().measure(fmt, J, DEVICE).time_s
    assert t1 > 0
    assert t1 == t2


@settings(max_examples=20, deadline=None)
@given(A=graphs())
def test_cost_monotone_in_J(A):
    """More dense columns can only raise every bucket's cost."""
    prof = matrix_cost_profiles(A, 1)[0]
    if not prof.num_nonempty_rows:
        return
    for e in (0, 2, prof.natural_max_exp):
        assert prof.cost(e, 64) >= prof.cost(e, 16)


@settings(max_examples=20, deadline=None)
@given(A=graphs(), P=st.sampled_from([2, 3]))
def test_partition_profiles_cover_all_nnz(A, P):
    if P > A.shape[1]:
        return
    profiles = matrix_cost_profiles(A, P)
    # With cap exponent 0 every non-empty row folds into the cap bucket, so
    # its column union is the partition's full distinct-column set; the
    # partitions' disjoint ranges must then cover all stored columns.
    total_unique = sum(p.cap_bucket_unique(0) for p in profiles)
    assert total_unique == np.unique(A.indices).size
