"""FormatBandit: handoff gating, determinism, persistence, migration.

The contract pinned here (docs/ADAPTIVE.md): the bandit defers to the
static selector until some arm of a key reaches ``min_obs`` raw
observations, then overrides it deterministically under a fixed seed;
its state pickles with a magic tag alongside the v2 plan-cache spill and
rides the cluster's spill transport on shard migration.
"""

import pickle

import numpy as np
import pytest

from repro.core import LiteForm, generate_training_data
from repro.matrices import SuiteSparseLikeCollection, power_law_graph
from repro.serve import (
    ARMS,
    BANDIT_MAGIC,
    ClusterFrontend,
    FormatBandit,
    FormatDriftDevice,
    PlanCache,
    SpMMRequest,
    SpMMServer,
    WorkloadSpec,
    fingerprint_csr,
    generate_workload,
    plan_arm,
    plan_key,
)


@pytest.fixture(scope="module")
def liteform():
    coll = SuiteSparseLikeCollection(size=6, max_rows=2500, seed=11)
    return LiteForm().fit(generate_training_data(coll, J_values=(32,)))


SPEC = WorkloadSpec(
    num_requests=60,
    num_matrices=3,
    zipf_s=1.1,
    J_choices=(32,),
    max_rows=2_000,
    with_operands=False,
    seed=5,
)


def _server(liteform, bandit, **kwargs):
    kwargs.setdefault("cache", PlanCache(max_bytes=1 << 30))
    return SpMMServer(liteform=liteform, bandit=bandit, **kwargs)


class TestHandoff:
    def test_defers_until_exactly_min_obs(self):
        """select() returns None through observation min_obs - 1 of the
        best arm, then an arm on the very next call."""
        bandit = FormatBandit(min_obs=3, explore=0.0, seed=0)
        assert bandit.select("k") is None
        for i in range(2):
            bandit.observe("k", "cell", 1.0)
            assert not bandit.ready("k")
            assert bandit.select("k") is None, f"overrode after {i + 1} obs"
        assert bandit.overrides == 0
        bandit.observe("k", "cell", 1.0)
        assert bandit.ready("k")
        assert bandit.select("k") in ARMS
        assert bandit.overrides == 1

    def test_min_obs_counts_one_arm_not_the_key_total(self):
        """Handoff needs min_obs on a *single* arm; observations spread
        across arms do not trigger it early."""
        bandit = FormatBandit(min_obs=3, explore=0.0, seed=0)
        for arm in ARMS:
            bandit.observe("k", arm, 1.0)
        assert bandit.key_observations("k") == 3
        assert not bandit.ready("k")
        assert bandit.select("k") is None

    def test_unobserved_arm_is_forced_first(self):
        """Post-handoff, the optimistic near-zero prior makes an untried
        arm win its first Thompson draw."""
        bandit = FormatBandit(min_obs=1, explore=0.0, seed=3)
        bandit.observe("k", "cell", 1.0)
        assert bandit.select("k") != "cell"

    def test_handoff_is_per_key(self):
        bandit = FormatBandit(min_obs=1, explore=0.0, seed=0)
        bandit.observe("a", "csr", 1.0)
        assert bandit.select("a") is not None
        assert bandit.select("b") is None

    def test_explore_plays_random_arm_before_handoff(self):
        bandit = FormatBandit(min_obs=10**6, explore=1.0, seed=0)
        assert bandit.select("k") in ARMS
        assert bandit.explorations == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="min_obs"):
            FormatBandit(min_obs=0)
        with pytest.raises(ValueError, match="explore"):
            FormatBandit(explore=1.5)
        with pytest.raises(ValueError, match="decay"):
            FormatBandit(decay=1.0)
        with pytest.raises(ValueError, match="unknown arm"):
            FormatBandit().observe("k", "coo", 1.0)


class TestDeterminism:
    def test_same_trace_and_seed_identical_arm_choices(self, liteform):
        def run():
            requests = generate_workload(SPEC)
            server = _server(liteform, FormatBandit(min_obs=2, seed=9))
            device = server.devices[0]
            arms = []
            for i, r in enumerate(requests):
                if i == len(requests) // 2:
                    device.fault_rate = 0.0  # no-op; keeps the loop honest
                arms.append(plan_arm(server.serve(r).plan))
            return arms

        assert run() == run()

    def test_different_seed_diverges(self, liteform):
        def run(seed):
            requests = generate_workload(SPEC)
            server = _server(liteform, FormatBandit(min_obs=1, explore=0.3, seed=seed))
            return [plan_arm(server.serve(r).plan) for r in requests]

        # With heavy exploration two seeds should not pick identical
        # sequences (they *may* in principle; these seeds do not).
        assert run(1) != run(2)


class TestPersistence:
    def _traced_bandit(self, liteform):
        server = _server(liteform, FormatBandit(min_obs=2, seed=9))
        for r in generate_workload(SPEC):
            server.serve(r)
        bandit = server.bandit
        assert bandit.key_observations_total() == SPEC.num_requests
        return server, bandit

    def test_round_trip_alongside_plan_cache_spill(self, liteform, tmp_path):
        """Bandit state spills next to the v2 plan-cache bundle and both
        restore: same keys, same per-arm statistics, same context."""
        server, bandit = self._traced_bandit(liteform)
        spill = tmp_path / "cache.spill"
        server.cache.save(spill)
        sidecar = spill.with_name(spill.name + ".bandit")
        bandit.save(sidecar)

        PlanCache.load(spill)  # the spill itself still restores
        restored = FormatBandit.load(sidecar)
        assert restored.min_obs == bandit.min_obs
        assert restored.explore == bandit.explore
        assert restored.decay == bandit.decay
        assert restored.state_dict()["stats"] == bandit.state_dict()["stats"]
        for key, ctx in bandit.state_dict()["context"].items():
            np.testing.assert_array_equal(
                restored.state_dict()["context"][key], ctx
            )

    def test_load_overrides_replace_saved_hyperparameters(
        self, liteform, tmp_path
    ):
        _, bandit = self._traced_bandit(liteform)
        path = tmp_path / "state.bandit"
        bandit.save(path)
        restored = FormatBandit.load(path, min_obs=7, explore=0.5)
        assert restored.min_obs == 7
        assert restored.explore == 0.5
        assert restored.state_dict()["stats"] == bandit.state_dict()["stats"]

    def test_load_rejects_foreign_pickle(self, tmp_path):
        path = tmp_path / "bogus.bandit"
        with path.open("wb") as fh:
            pickle.dump({"magic": "something-else"}, fh)
        with pytest.raises(ValueError, match="bandit-state"):
            FormatBandit.load(path)
        with pytest.raises(ValueError, match=BANDIT_MAGIC):
            FormatBandit().merge_state({"magic": "nope"})

    def test_merge_adopts_only_unseen_keys(self):
        donor = FormatBandit(seed=1)
        donor.observe("a", "cell", 5.0)
        donor.observe("b", "csr", 7.0)
        local = FormatBandit(seed=2)
        local.observe("a", "cell", 1.0)
        adopted = local.merge_state(donor.state_dict())
        assert adopted == 1  # "b" adopted, local "a" kept
        assert local._stats["a"]["cell"].mean_ms == 1.0
        assert local._stats["b"]["csr"].mean_ms == 7.0

    def test_state_dict_key_subset(self):
        bandit = FormatBandit()
        bandit.observe("a", "cell", 1.0)
        bandit.observe("b", "csr", 2.0)
        state = bandit.state_dict(keys=["b", "missing"])
        assert list(state["stats"]) == ["b"]


class TestServerIntegration:
    def test_flip_re_pins_the_cached_plan(self, liteform):
        """When the bandit's decision differs from the cached plan's arm,
        the cache entry is replaced with the new arm's plan."""
        A = power_law_graph(600, 6, seed=3)
        req = SpMMRequest(matrix=A, B=None, J=32)
        key = plan_key(fingerprint_csr(A), 32)
        device = FormatDriftDevice(slowdown=8.0)
        server = _server(
            liteform,
            FormatBandit(min_obs=2, explore=0.0, seed=4),
            devices=[device],
        )
        for _ in range(4):
            server.serve(req)
        device.drifted = True  # cell family now 8x slower
        for _ in range(12):
            server.serve(req)
        m = server.metrics
        assert m.bandit_observations == 16
        assert m.bandit_flips > 0
        entry = server.cache.get(key)
        assert entry is not None
        assert plan_arm(entry.plan) != "cell"
        assert m.availability == 1.0

    def test_metrics_mirror_bandit_counters(self, liteform):
        server = _server(liteform, FormatBandit(min_obs=2, seed=9))
        for r in generate_workload(SPEC):
            server.serve(r)
        b, m = server.bandit, server.metrics
        assert m.bandit_observations == b.observations == SPEC.num_requests
        assert m.bandit_overrides == b.overrides
        assert m.bandit_explorations == b.explorations
        snap = m.snapshot()
        assert snap["bandit_observations"] == b.observations
        assert "bandit" in m.report()

    def test_retrain_requires_evidence(self, liteform):
        bandit = FormatBandit()
        assert bandit.retrain(liteform) == 0
        assert bandit.retrains == 0


class TestClusterMigration:
    def test_bandit_state_rides_the_spill_transport(self, liteform):
        frontend = ClusterFrontend(
            liteform=liteform,
            num_shards=2,
            seed=7,
            adaptive=True,
            bandit_min_obs=2,
        )
        requests = generate_workload(SPEC)
        for r in requests:
            frontend.serve(r)
        before = sum(
            s.server.bandit.key_observations_total()
            for s in frontend._live()
        )
        assert before == SPEC.num_requests
        frontend.add_shard()
        new = frontend._live()[-1]
        assert new.server.bandit is not None
        # The new shard warm-started from donor spill sidecars: it holds
        # per-key statistics it never observed locally.
        assert new.server.bandit.key_observations_total() > 0
        assert new.server.bandit.observations == 0
        snap = frontend.snapshot()["cluster"]
        assert snap["bandit_observations"] == SPEC.num_requests
