"""Plan-cache LRU/byte-budget behaviour and spill/warm-start round trips."""

import pickle

import pytest

from repro.core import LiteForm, generate_training_data
from repro.matrices import SuiteSparseLikeCollection, power_law_graph
from repro.serve import PlanCache
from repro.serve.plan_cache import CACHE_MAGIC


@pytest.fixture(scope="module")
def liteform():
    coll = SuiteSparseLikeCollection(size=6, max_rows=2500, seed=77)
    return LiteForm().fit(generate_training_data(coll, J_values=(32,)))


@pytest.fixture(scope="module")
def plans(liteform):
    out = {}
    for i in range(4):
        A = power_law_graph(300 + 100 * i, 6, seed=i)
        # force the fixed-format path so footprints grow monotonically with
        # the matrix size (CELL padding would make eviction math fragile)
        out[f"k{i}"] = liteform.compose(A, 32, force_cell=False)
    return out


class TestLRU:
    def test_hit_miss_counters(self, plans):
        cache = PlanCache(max_bytes=1 << 30)
        assert cache.get("k0") is None
        cache.put("k0", plans["k0"], compose_overhead_s=0.5)
        entry = cache.get("k0")
        assert entry is not None and entry.plan is plans["k0"]
        assert entry.compose_overhead_s == 0.5
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_eviction_under_byte_budget(self, plans):
        sizes = {k: p.fmt.footprint_bytes for k, p in plans.items()}
        # budget fits exactly the two smallest plans of k0..k2
        budget = sizes["k0"] + sizes["k1"]
        cache = PlanCache(max_bytes=budget)
        cache.put("k0", plans["k0"])
        cache.put("k1", plans["k1"])
        assert cache.evictions == 0 and len(cache) == 2
        cache.put("k2", plans["k2"])
        assert cache.evictions >= 1
        assert cache.total_bytes <= budget
        assert "k2" in cache  # the fresh entry is resident
        assert "k0" not in cache  # the least recently used went first

    def test_get_refreshes_lru_position(self, plans):
        sizes = {k: p.fmt.footprint_bytes for k, p in plans.items()}
        cache = PlanCache(max_bytes=sizes["k0"] + sizes["k1"] + sizes["k2"])
        for k in ("k0", "k1", "k2"):
            cache.put(k, plans[k])
        cache.get("k0")  # k1 becomes the LRU victim
        cache.put("k3", plans["k3"])
        assert "k0" in cache
        assert "k1" not in cache

    def test_oversized_plan_rejected(self, plans):
        cache = PlanCache(max_bytes=1)
        assert not cache.put("k0", plans["k0"])
        assert cache.rejected == 1 and len(cache) == 0

    def test_refresh_same_key_does_not_double_count(self, plans):
        cache = PlanCache(max_bytes=1 << 30)
        cache.put("k0", plans["k0"])
        cache.put("k0", plans["k0"])
        assert len(cache) == 1
        assert cache.total_bytes == plans["k0"].fmt.footprint_bytes

    def test_stats_keys(self, plans):
        cache = PlanCache(max_bytes=1 << 30)
        cache.put("k0", plans["k0"])
        s = cache.stats()
        for key in ("entries", "bytes", "max_bytes", "hits", "misses",
                    "evictions", "rejected", "hit_rate"):
            assert key in s


class TestSpill:
    def test_save_load_round_trip(self, tmp_path, plans):
        cache = PlanCache(max_bytes=1 << 30)
        for k, p in plans.items():
            cache.put(k, p, compose_overhead_s=0.1)
        path = tmp_path / "cache.pkl"
        cache.save(path)
        warmed = PlanCache.load(path)
        assert set(warmed.keys()) == set(plans)
        assert warmed.hits == 0 and warmed.misses == 0  # warm-start isn't traffic
        entry = warmed.get("k1")
        assert entry.compose_overhead_s == pytest.approx(0.1)
        assert entry.plan.fmt.to_csr().nnz == plans["k1"].fmt.to_csr().nnz

    def test_load_rejects_non_bundle(self, tmp_path):
        path = tmp_path / "junk.pkl"
        with path.open("wb") as fh:
            pickle.dump([1, 2, 3], fh)
        with pytest.raises(ValueError, match="not a saved plan-cache bundle"):
            PlanCache.load(path)

    def test_load_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "old.pkl"
        with path.open("wb") as fh:
            pickle.dump({"magic": "repro-plancache-v0", "entries": []}, fh)
        with pytest.raises(ValueError, match="incompatible cache tag"):
            PlanCache.load(path)
        assert CACHE_MAGIC != "repro-plancache-v0"

    def test_load_migrates_v1_spill_to_op_keys(self, tmp_path, plans):
        """A pre-op-key (v1) spill warm-starts under ``(fingerprint,
        "spmm")`` keys instead of raising."""
        cache = PlanCache(max_bytes=1 << 30)
        for i, (k, p) in enumerate(plans.items()):
            cache.put(f"fp-{k}/J{32 + i}", p, compose_overhead_s=0.3)
        path = tmp_path / "v1.pkl"
        cache.save(path)
        # rewrite the bundle as a v1 spill: old magic, pre-op keys
        with path.open("rb") as fh:
            payload = pickle.load(fh)
        payload["magic"] = "repro-plancache-v1"
        with path.open("wb") as fh:
            pickle.dump(payload, fh)
        warmed = PlanCache.load(path)
        assert set(warmed.keys()) == {
            f"fp-k{i}/spmm/J{32 + i}" for i in range(4)
        }
        entry = warmed.get("fp-k1/spmm/J33")
        assert entry is not None
        assert entry.compose_overhead_s == pytest.approx(0.3)
        assert warmed.hits == 1 and warmed.misses == 0  # the get() above

    def test_load_leaves_current_magic_keys_untouched(self, tmp_path, plans):
        """A v2 spill whose keys already carry ops must not be rewritten."""
        cache = PlanCache(max_bytes=1 << 30)
        cache.put("fp-a/sddmm/J16", plans["k0"])
        cache.put("fp-b/spmm/J32", plans["k1"])
        cache.put("opaque-key", plans["k2"])  # no /J suffix at all
        path = tmp_path / "v2.pkl"
        cache.save(path)
        warmed = PlanCache.load(path)
        assert set(warmed.keys()) == {
            "fp-a/sddmm/J16", "fp-b/spmm/J32", "opaque-key"
        }

    def test_v1_migration_skips_keys_already_op_typed(self, tmp_path, plans):
        """Defensive: a v1-tagged bundle whose keys already name an op
        (a hand-edited or half-migrated spill) is not double-rewritten."""
        cache = PlanCache(max_bytes=1 << 30)
        cache.put("fp-a/spmv/J1", plans["k0"])
        cache.put("fp-b/J64", plans["k1"])
        path = tmp_path / "mixed.pkl"
        cache.save(path)
        with path.open("rb") as fh:
            payload = pickle.load(fh)
        payload["magic"] = "repro-plancache-v1"
        with path.open("wb") as fh:
            pickle.dump(payload, fh)
        warmed = PlanCache.load(path)
        assert set(warmed.keys()) == {"fp-a/spmv/J1", "fp-b/spmm/J64"}

    def test_load_keeps_saved_budget_when_unspecified(self, tmp_path, plans):
        cache = PlanCache(max_bytes=12345678)
        for k, p in plans.items():
            cache.put(k, p)
        path = tmp_path / "cache.pkl"
        cache.save(path)
        assert PlanCache.load(path).max_bytes == 12345678
        assert PlanCache.load(path, max_bytes=None).max_bytes == 12345678

    def test_load_rejects_explicit_invalid_budget(self, tmp_path, plans):
        """Regression: ``max_bytes=0`` is falsy but is an explicit
        override, not "use the saved budget" — it must raise the same
        ValueError the constructor raises everywhere else."""
        cache = PlanCache(max_bytes=1 << 30)
        for k, p in plans.items():
            cache.put(k, p)
        path = tmp_path / "cache.pkl"
        cache.save(path)
        with pytest.raises(ValueError, match="max_bytes must be >= 1"):
            PlanCache.load(path, max_bytes=0)
        with pytest.raises(ValueError, match="max_bytes must be >= 1"):
            PlanCache.load(path, max_bytes=-4)

    def test_load_respects_smaller_budget(self, tmp_path, plans):
        cache = PlanCache(max_bytes=1 << 30)
        for k, p in plans.items():
            cache.put(k, p)
        path = tmp_path / "cache.pkl"
        cache.save(path)
        smallest = min(p.fmt.footprint_bytes for p in plans.values())
        warmed = PlanCache.load(path, max_bytes=smallest)
        assert warmed.total_bytes <= smallest
        assert len(warmed) <= 1

    def test_load_into_smaller_budget_does_not_pollute_counters(self, tmp_path, plans):
        """Regression: warm-start evictions/rejections are not traffic."""
        cache = PlanCache(max_bytes=1 << 30)
        for k, p in plans.items():
            cache.put(k, p)
        path = tmp_path / "cache.pkl"
        cache.save(path)
        # loading into a budget fitting only the smallest plan forces the
        # put() loop to evict/reject — none of which is request traffic
        smallest = min(p.fmt.footprint_bytes for p in plans.values())
        warmed = PlanCache.load(path, max_bytes=smallest)
        assert warmed.evictions == 0
        assert warmed.rejected == 0
        assert warmed.hits == 0 and warmed.misses == 0

    def test_save_load_round_trip_smaller_budget_entries_usable(self, tmp_path, plans):
        """Surviving entries of a shrunken warm start still serve plans."""
        cache = PlanCache(max_bytes=1 << 30)
        for k, p in plans.items():
            cache.put(k, p, compose_overhead_s=0.2)
        path = tmp_path / "cache.pkl"
        cache.save(path)
        sizes = {k: p.fmt.footprint_bytes for k, p in plans.items()}
        budget = sizes["k2"] + sizes["k3"]  # room for the two loaded last
        warmed = PlanCache.load(path, max_bytes=budget)
        assert warmed.total_bytes <= budget
        assert len(warmed) >= 1
        survivor = warmed.keys()[-1]  # most recently loaded survives
        entry = warmed.get(survivor)
        assert entry is not None
        assert entry.compose_overhead_s == pytest.approx(0.2)
        assert entry.plan.fmt.to_csr().nnz == plans[survivor].fmt.to_csr().nnz


class TestEvictionControlFlow:
    """put() must stay correct without assertions (python -O)."""

    def test_refresh_with_larger_plan_evicts_others_not_itself(self, plans):
        sizes = {k: p.fmt.footprint_bytes for k, p in plans.items()}
        budget = sizes["k0"] + sizes["k3"] - 1  # k0 + k3 cannot coexist
        cache = PlanCache(max_bytes=budget)
        cache.put("k0", plans["k0"])
        cache.put("small", plans["k0"])
        # refreshing "small" with the bigger k3 plan must evict k0, never
        # the entry being inserted
        assert cache.put("small", plans["k3"])
        assert "small" in cache and "k0" not in cache
        assert cache.total_bytes == sizes["k3"]
        assert cache.total_bytes <= budget

    def test_exact_fit_insert_does_not_evict_fresh_entry(self, plans):
        size = plans["k1"].fmt.footprint_bytes
        cache = PlanCache(max_bytes=size)
        assert cache.put("k1", plans["k1"])
        assert "k1" in cache and cache.total_bytes == size
        assert cache.evictions == 0
