"""`ClusterFrontend` behavior: routing, replication, chaos, elasticity.

The ring's hashing invariants live in ``test_serve_cluster_ring.py``;
these tests drive the full fleet — real servers, real plan caches — and
pin the serving contract: results bit-identical to a single node, no
request lost to membership changes or shard failures, and cached plans
following their keys across the fleet.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LiteForm, generate_training_data
from repro.gpu import FaultPolicy, FaultyDevice
from repro.matrices import SuiteSparseLikeCollection, power_law_graph
from repro.serve import (
    ClusterFrontend,
    RetryPolicy,
    SpMMRequest,
    SpMMServer,
    WindowedFrequencySketch,
)


@pytest.fixture(scope="module")
def liteform():
    coll = SuiteSparseLikeCollection(size=6, max_rows=2500, seed=11)
    return LiteForm().fit(generate_training_data(coll, J_values=(32,)))


def _matrices(n: int, rows: int = 300):
    return [power_law_graph(rows, 6, seed=100 + i) for i in range(n)]


def _requests(mats, count: int, J: int = 32, with_B: bool = False, seed: int = 0):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(count):
        A = mats[i % len(mats)]
        B = None
        if with_B:
            B = rng.standard_normal((A.shape[1], J)).astype(np.float32)
        out.append(SpMMRequest(matrix=A, B=B, J=J, name=f"m{i % len(mats)}"))
    return out


class TestBitIdentity:
    def test_matches_single_node_numeric(self, liteform):
        mats = _matrices(5)
        reqs = _requests(mats, 15, with_B=True, seed=3)
        single = SpMMServer(liteform=liteform)
        cluster = ClusterFrontend(liteform, num_shards=4)
        for r in reqs:
            a = single.serve(SpMMRequest(matrix=r.matrix, B=r.B, J=r.J))
            b = cluster.serve(r)
            assert b.ok
            assert np.array_equal(a.C, b.C)

    def test_replicated_serving_stays_identical(self, liteform):
        mats = _matrices(2)
        reqs = _requests(mats, 20, with_B=True, seed=4)
        single = SpMMServer(liteform=liteform)
        cluster = ClusterFrontend(
            liteform, num_shards=4, replication=3, hot_fraction=0.2,
            hot_min_count=2,
        )
        for r in reqs:
            a = single.serve(SpMMRequest(matrix=r.matrix, B=r.B, J=r.J))
            b = cluster.serve(r)
            assert np.array_equal(a.C, b.C)


class TestRouting:
    def test_fingerprint_affinity(self, liteform):
        """Without replication every repeat of a matrix lands on the same
        shard, so the fleet composes each fingerprint exactly once."""
        mats = _matrices(6)
        fe = ClusterFrontend(liteform, num_shards=4)
        fe.replay(_requests(mats, 36))
        total_misses = sum(
            s["cache"]["misses"] for s in fe.snapshot()["shards"]
        )
        assert total_misses == len(mats)

    def test_submit_poll_contract(self, liteform):
        fe = ClusterFrontend(liteform, num_shards=2)
        t = fe.submit(_requests(_matrices(1), 1)[0])
        first = fe.poll(t)
        assert first is not None and first.ok
        assert fe.poll(t) is None

    def test_drain_preserves_submission_order(self, liteform):
        mats = _matrices(4)
        fe = ClusterFrontend(liteform, num_shards=3)
        reqs = _requests(mats, 12)
        tickets = [fe.submit(r) for r in reqs]
        responses = fe.drain()
        assert len(responses) == len(reqs)
        assert tickets == sorted(tickets)

    def test_invalid_config(self, liteform):
        with pytest.raises(ValueError):
            ClusterFrontend(liteform, num_shards=0)
        with pytest.raises(ValueError):
            ClusterFrontend(liteform, num_shards=2, replication=0)
        with pytest.raises(ValueError):
            ClusterFrontend(liteform, num_shards=2, hot_fraction=0.0)


class TestHotKeyReplication:
    def test_dominant_key_gets_replicated(self, liteform):
        mats = _matrices(4)
        # 70% of traffic on matrix 0 — a Zipf head.
        pattern = [0, 0, 0, 0, 0, 0, 0, 1, 2, 3]
        reqs = [
            SpMMRequest(matrix=mats[pattern[i % 10]], B=None, J=32)
            for i in range(50)
        ]
        fe = ClusterFrontend(
            liteform, num_shards=4, replication=2, hot_fraction=0.3,
            hot_min_count=3,
        )
        m = fe.replay(reqs)
        assert m.hot_keys == 1
        assert m.plans_replicated >= 1
        assert m.replica_routes > 0
        assert m.failed == 0

    def test_cold_uniform_traffic_never_replicates(self, liteform):
        mats = _matrices(8)
        fe = ClusterFrontend(
            liteform, num_shards=4, replication=2, hot_fraction=0.3
        )
        m = fe.replay(_requests(mats, 48))
        assert m.hot_keys == 0
        assert m.plans_replicated == 0


class TestChaos:
    def test_kill_shard_loses_no_requests(self, liteform):
        mats = _matrices(6)
        reqs = _requests(mats, 60)
        fe = ClusterFrontend(liteform, num_shards=4)
        m = fe.replay(reqs, kill_shard_at_ms=30)
        assert m.shards_killed == 1
        assert m.completed == len(reqs)
        assert m.failed == 0
        assert m.availability == 1.0
        assert len(fe.shards) == 3

    def test_dead_device_pool_reroutes(self, liteform):
        """A shard whose every launch dies fails its requests; the
        frontend must re-route them to surviving shards, not surface the
        failure."""
        def factory(shard_index, device_index):
            if shard_index == 0:
                return FaultyDevice(faults=FaultPolicy(death_rate=1.0, seed=9))
            return FaultyDevice(faults=FaultPolicy(seed=90 + shard_index))

        fe = ClusterFrontend(
            liteform,
            num_shards=3,
            device_factory=factory,
            retry=RetryPolicy(max_attempts=1),
        )
        m = fe.replay(_requests(_matrices(6), 30))
        assert m.failed == 0
        assert m.availability == 1.0
        # shard-0 owns ~1/3 of fingerprints, so reroutes must have happened
        assert m.rerouted > 0

    def test_kill_last_shard_refused(self, liteform):
        fe = ClusterFrontend(liteform, num_shards=1)
        with pytest.raises(ValueError):
            fe.kill_shard("shard-0")

    def test_kill_unknown_shard(self, liteform):
        fe = ClusterFrontend(liteform, num_shards=2)
        with pytest.raises(KeyError):
            fe.kill_shard("shard-99")
        fe.kill_shard("shard-1")
        with pytest.raises(KeyError):  # already dead
            fe.kill_shard("shard-1")


class TestElasticMembership:
    def test_add_shard_warm_starts_moved_keys(self, liteform):
        mats = _matrices(8)
        fe = ClusterFrontend(liteform, num_shards=3)
        fe.replay(_requests(mats, 24))
        change = fe.add_shard()
        assert change.kind == "add"
        assert change.cached_keys == len(mats)
        assert 0.0 <= change.fraction < 1.0
        assert change.plans_migrated == change.keys_moved
        # Migrated plans must serve as cache hits on their new shard:
        # replaying the same traffic composes nothing new anywhere.
        before = sum(s["cache"]["misses"] for s in fe.snapshot()["shards"])
        fe.replay(_requests(mats, 24))
        after = sum(s["cache"]["misses"] for s in fe.snapshot()["shards"])
        assert after == before

    def test_remove_shard_migrates_and_serves(self, liteform):
        mats = _matrices(8)
        fe = ClusterFrontend(liteform, num_shards=4)
        fe.replay(_requests(mats, 24))
        victim = fe.shards[0]
        change = fe.remove_shard(victim)
        assert change.kind == "remove"
        assert victim not in fe.shards
        before = sum(s["cache"]["misses"] for s in fe.snapshot()["shards"])
        m = fe.replay(_requests(mats, 24))
        after = sum(s["cache"]["misses"] for s in fe.snapshot()["shards"])
        assert after == before  # every migrated plan hit on its new owner
        assert m.failed == 0

    def test_kill_loses_cache_but_recovers(self, liteform):
        mats = _matrices(8)
        fe = ClusterFrontend(liteform, num_shards=4)
        fe.replay(_requests(mats, 24))
        change = fe.kill_shard(fe.shards[0])
        assert change.plans_migrated == 0
        before = sum(s["cache"]["misses"] for s in fe.snapshot()["shards"])
        m = fe.replay(_requests(mats, 24))
        after = sum(s["cache"]["misses"] for s in fe.snapshot()["shards"])
        # the killed shard's plans are gone: exactly those recompose
        assert after - before == change.keys_moved
        assert m.failed == 0

    def test_membership_change_requeues_pending(self, liteform):
        mats = _matrices(6)
        fe = ClusterFrontend(liteform, num_shards=3)
        for r in _requests(mats, 18):
            fe.submit(r)
        victim = fe.shards[0]
        change = fe.kill_shard(victim)
        assert change.requeued > 0
        responses = fe.drain()
        assert len(responses) == 18
        assert all(not r.failed for r in responses)


class TestBatchedMode:
    def test_scheduler_per_shard(self, liteform):
        mats = _matrices(3)
        fe = ClusterFrontend(liteform, num_shards=2, batch=4)
        reqs = _requests(mats, 18)
        for r in reqs:
            fe.submit(r)
        responses = fe.drain()
        assert len(responses) == 18
        assert all(not r.failed for r in responses)
        # repeats of one fingerprint coalesce into fused launches
        assert any(r.batch_size > 1 for r in responses)


class TestObservability:
    def test_snapshot_shape(self, liteform):
        fe = ClusterFrontend(liteform, num_shards=2)
        fe.replay(_requests(_matrices(3), 9))
        snap = fe.snapshot()
        assert snap["cluster"]["completed"] == 9
        assert snap["cluster"]["shards_live"] == 2
        assert {s["shard_id"] for s in snap["shards"]} == {"shard-0", "shard-1"}
        for s in snap["shards"]:
            assert set(s) >= {"alive", "routed", "completed", "busy_ms", "cache"}

    def test_registry_publishes_cluster_series(self, liteform):
        fe = ClusterFrontend(liteform, num_shards=2)
        fe.replay(_requests(_matrices(3), 9))
        snap = fe.metrics.registry.snapshot()
        assert snap["cluster_routed_total"] == 9
        assert snap["cluster_availability"] == 1.0
        assert snap["cluster_shards_live"] == 2

    def test_report_renders(self, liteform):
        fe = ClusterFrontend(liteform, num_shards=2)
        fe.replay(_requests(_matrices(3), 9))
        text = fe.report()
        assert "shards" in text and "shard-0" in text


class TestSketchIntegration:
    def test_window_decay(self):
        sk = WindowedFrequencySketch(window=8)
        for _ in range(8):
            sk.observe("a")
        assert sk.frequency("a") == 1.0
        for _ in range(8):
            sk.observe("b")
        assert sk.count("a") == 0
        assert sk.hot_keys(0.5) == ["b"]
