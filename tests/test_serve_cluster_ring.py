"""Invariants of the consistent-hash :class:`ShardRing`.

The cluster's cache-locality and remigration guarantees all reduce to
ring properties, so they are pinned here without any serving machinery:
deterministic membership-only routing, balanced key spread, bounded
remigration on add/remove, and replica-set sanity.  A hypothesis sweep
drives arbitrary add/remove sequences and checks every fingerprint
always routes to a live shard.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.cluster import ShardRing, remigration_fraction

SHARDS8 = [f"s{i}" for i in range(8)]


def keys(n: int) -> list[str]:
    # Stand-ins for plan keys; the ring only sees opaque strings.
    return [f"sha:fingerprint-{i:05d}/J64" for i in range(n)]


class TestDeterminism:
    def test_routing_is_membership_only(self):
        a = ShardRing(SHARDS8)
        b = ShardRing(reversed(SHARDS8))
        ks = keys(512)
        assert a.assignment(ks) == b.assignment(ks)

    def test_route_is_stable(self):
        ring = ShardRing(SHARDS8)
        ks = keys(64)
        assert ring.assignment(ks) == ring.assignment(ks)

    def test_add_then_remove_restores_assignment(self):
        ring = ShardRing(SHARDS8)
        ks = keys(2048)
        before = ring.assignment(ks)
        ring.add_shard("s8")
        ring.remove_shard("s8")
        assert ring.assignment(ks) == before


class TestBalance:
    def test_spread_within_virtual_node_bound(self):
        ring = ShardRing(SHARDS8, virtual_nodes=64)
        counts = ring.spread(keys(20_000))
        assert set(counts) == set(SHARDS8)
        mean = sum(counts.values()) / len(counts)
        # Arc-length variance at 64 vnodes keeps every shard within ~2x
        # of its fair share; a sanity bound, not a statistical proof.
        assert max(counts.values()) < 2.0 * mean
        assert min(counts.values()) > 0.3 * mean

    def test_more_vnodes_balance_better(self):
        ks = keys(20_000)

        def skew(vnodes: int) -> float:
            counts = ShardRing(SHARDS8, virtual_nodes=vnodes).spread(ks)
            return max(counts.values()) / (sum(counts.values()) / len(counts))

        assert skew(128) < skew(4)


class TestRemigration:
    N = 8
    PROBES = 4096

    def test_add_moves_about_one_over_n(self):
        ring = ShardRing(SHARDS8)
        ks = keys(self.PROBES)
        before = ring.assignment(ks)
        ring.add_shard("s8")
        frac = remigration_fraction(before, ring.assignment(ks))
        assert 0.0 < frac <= 1.5 / (self.N + 1)

    def test_remove_moves_about_one_over_n(self):
        ring = ShardRing(SHARDS8)
        ks = keys(self.PROBES)
        before = ring.assignment(ks)
        ring.remove_shard("s3")
        frac = remigration_fraction(before, ring.assignment(ks))
        assert 0.0 < frac <= 1.5 / self.N

    def test_only_departed_shards_keys_move(self):
        ring = ShardRing(SHARDS8)
        ks = keys(self.PROBES)
        before = ring.assignment(ks)
        ring.remove_shard("s3")
        after = ring.assignment(ks)
        for key in ks:
            if before[key] != "s3":
                assert after[key] == before[key]

    def test_add_only_captures_keys(self):
        ring = ShardRing(SHARDS8)
        ks = keys(self.PROBES)
        before = ring.assignment(ks)
        ring.add_shard("s8")
        after = ring.assignment(ks)
        for key in ks:
            if after[key] != before[key]:
                assert after[key] == "s8"


class TestReplicas:
    def test_distinct_and_live(self):
        ring = ShardRing(SHARDS8)
        for key in keys(128):
            reps = ring.route_replicas(key, 3)
            assert len(reps) == 3
            assert len(set(reps)) == 3
            assert all(r in ring for r in reps)

    def test_primary_first(self):
        ring = ShardRing(SHARDS8)
        for key in keys(64):
            assert ring.route_replicas(key, 3)[0] == ring.route(key)

    def test_capped_at_membership(self):
        ring = ShardRing(["a", "b"])
        assert sorted(ring.route_replicas("k", 5)) == ["a", "b"]

    def test_invalid(self):
        ring = ShardRing(["a"])
        with pytest.raises(ValueError):
            ring.route_replicas("k", 0)


class TestMembershipErrors:
    def test_duplicate_add(self):
        ring = ShardRing(["a"])
        with pytest.raises(ValueError):
            ring.add_shard("a")

    def test_remove_unknown(self):
        ring = ShardRing(["a"])
        with pytest.raises(KeyError):
            ring.remove_shard("b")

    def test_empty_ring_routes_nothing(self):
        with pytest.raises(RuntimeError):
            ShardRing().route("k")

    def test_empty_shard_id(self):
        with pytest.raises(ValueError):
            ShardRing().add_shard("")


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["add", "remove"]), st.integers(0, 11)),
        max_size=24,
    ),
    probe=st.integers(0, 10_000),
)
def test_every_key_routes_to_a_live_shard(ops, probe):
    """Arbitrary membership churn never strands a fingerprint."""
    ring = ShardRing(["seed-shard"])
    for op, i in ops:
        name = f"shard-{i}"
        if op == "add" and name not in ring:
            ring.add_shard(name)
        elif op == "remove" and name in ring and len(ring) > 1:
            ring.remove_shard(name)
    owner = ring.route(f"probe-key-{probe}")
    assert owner in ring.shards
    replicas = ring.route_replicas(f"probe-key-{probe}", 3)
    assert replicas[0] == owner
    assert len(replicas) == min(3, len(ring))
