"""Fingerprint determinism and collision resistance."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats.base import as_csr
from repro.matrices import power_law_graph, uniform_random_matrix
from repro.serve import fingerprint_csr, plan_key


class TestDeterminism:
    def test_same_matrix_same_fingerprint(self):
        A = power_law_graph(500, 8, seed=1)
        assert fingerprint_csr(A).key == fingerprint_csr(A).key

    def test_copy_same_fingerprint(self):
        A = power_law_graph(500, 8, seed=1)
        assert fingerprint_csr(A).key == fingerprint_csr(A.copy()).key

    def test_key_embeds_shape_and_nnz(self):
        A = uniform_random_matrix(64, 48, 0.05, seed=2)
        fp = fingerprint_csr(A)
        assert fp.rows == 64 and fp.cols == 48 and fp.nnz == A.nnz
        assert fp.key.endswith(f"-64x48-{A.nnz}")

    def test_sampled_large_array_is_deterministic(self):
        A = power_law_graph(3_000, 20, seed=3)
        small_budget = 4096  # forces chunk sampling on indices/data
        a = fingerprint_csr(A, sample_budget_bytes=small_budget)
        b = fingerprint_csr(A.copy(), sample_budget_bytes=small_budget)
        assert a.key == b.key


class TestCollisionResistance:
    def test_row_permutation_changes_fingerprint(self):
        A = power_law_graph(400, 6, seed=4)
        rng = np.random.default_rng(0)
        perm = rng.permutation(A.shape[0])
        P = as_csr(A[perm])
        assert A.nnz == P.nnz and A.shape == P.shape
        assert fingerprint_csr(A).key != fingerprint_csr(P).key

    def test_column_permutation_changes_fingerprint(self):
        A = uniform_random_matrix(200, 200, 0.05, seed=5)
        perm = np.random.default_rng(1).permutation(A.shape[1])
        P = as_csr(A[:, perm])
        assert fingerprint_csr(A).key != fingerprint_csr(P).key

    def test_value_change_changes_fingerprint(self):
        A = power_law_graph(300, 5, seed=6)
        B = A.copy()
        B.data = B.data.copy()
        B.data[0] += 1.0
        assert fingerprint_csr(A).key != fingerprint_csr(B).key

    def test_value_change_ignored_when_pattern_only(self):
        A = power_law_graph(300, 5, seed=6)
        B = A.copy()
        B.data = B.data.copy()
        B.data[0] += 1.0
        a = fingerprint_csr(A, include_values=False)
        b = fingerprint_csr(B, include_values=False)
        assert a.key == b.key

    def test_moved_nonzero_changes_fingerprint(self):
        dense = np.zeros((10, 10), dtype=np.float32)
        dense[2, 3] = 1.0
        other = np.zeros((10, 10), dtype=np.float32)
        other[2, 4] = 1.0
        assert (
            fingerprint_csr(as_csr(dense)).key
            != fingerprint_csr(as_csr(other)).key
        )

    def test_over_budget_sampling_still_discriminates_moved_nonzero(self):
        """Chunk-sampled (over-budget) arrays must still see a moved entry."""
        budget = 4096
        rows, row_nnz, cols = 40, 50, 4096
        indptr = np.arange(rows + 1, dtype=np.int32) * row_nnz
        indices = np.tile(np.arange(row_nnz, dtype=np.int32) * 2, rows)
        data = np.ones(rows * row_nnz, dtype=np.float32)
        A = sp.csr_matrix((data, indices.copy(), indptr), shape=(rows, cols))
        # indices/data are > budget, so both are chunk-sampled
        assert A.indices.nbytes > budget and A.data.nbytes > budget
        moved = indices.copy()
        moved[2] += 1  # move one non-zero; stays sorted, no duplicate
        B = sp.csr_matrix((data, moved, indptr), shape=(rows, cols))
        a = fingerprint_csr(A, sample_budget_bytes=budget)
        b = fingerprint_csr(B, sample_budget_bytes=budget)
        assert a.key != b.key


class TestValidation:
    def test_rejects_non_csr(self):
        A = sp.coo_matrix(np.eye(4, dtype=np.float32))
        with pytest.raises(TypeError):
            fingerprint_csr(A)

    def test_rejects_tiny_budget(self):
        A = power_law_graph(50, 3, seed=7)
        with pytest.raises(ValueError):
            fingerprint_csr(A, sample_budget_bytes=8)

    def test_plan_key_varies_with_J(self):
        fp = fingerprint_csr(power_law_graph(100, 4, seed=8))
        assert plan_key(fp, 32) != plan_key(fp, 128)
        with pytest.raises(ValueError):
            plan_key(fp, 0)
