"""Graph (DAG) requests: validation, numerics, structural reuse, wiring.

The reuse contract under test is the live-serving version of Fig. 8: a
multi-layer GNN chain over one adjacency composes once per (A, op-set)
and re-values thereafter, and the chained result is bit-identical to
executing the same stages sequentially as un-batched op requests.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LiteForm, generate_training_data
from repro.kernels.sddmm import sddmm_reference
from repro.matrices import SuiteSparseLikeCollection, power_law_graph
from repro.matrices.gnn import GNNWorkloadSpec, generate_gnn_workload
from repro.serve import (
    ClusterFrontend,
    GraphEngine,
    GraphRequest,
    OpRequest,
    OpStage,
    PlanCache,
    Scheduler,
    SpMMServer,
    plan_key,
    plan_op,
)
from repro.serve.graph import plan_key_for_graph, row_softmax, row_sum_normalize


@pytest.fixture(scope="module")
def liteform():
    coll = SuiteSparseLikeCollection(size=6, max_rows=2500, seed=11)
    return LiteForm().fit(generate_training_data(coll, J_values=(32,)))


@pytest.fixture()
def server(liteform):
    return SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))


def _features(n, J=16, seed=0):
    return np.random.default_rng(seed).standard_normal((n, J)).astype(np.float32)


def _gat_stages(A, H, W, index=0, h_ref=None):
    h = h_ref if h_ref is not None else H
    return [
        OpStage(name=f"scores{index}", op="sddmm", matrix=A, inputs=(h, h)),
        OpStage(name=f"attn{index}", op="normalize",
                inputs=(f"@scores{index}",), kind="softmax"),
        OpStage(name=f"agg{index}", op="spmm", matrix=f"@attn{index}", inputs=(h,)),
        OpStage(name=f"update{index}", op="dense", inputs=(f"@agg{index}",),
                weight=W, activation="relu"),
    ]


class TestNormalize:
    def test_row_softmax_rows_sum_to_one(self):
        A = power_law_graph(200, 5, seed=1)
        S = row_softmax(A)
        sums = np.add.reduceat(S.data, S.indptr[:-1][np.diff(S.indptr) > 0])
        np.testing.assert_allclose(sums, 1.0, rtol=1e-5)
        assert S.dtype == np.float32
        assert np.array_equal(S.indptr, A.indptr)
        assert np.array_equal(S.indices, A.indices)

    def test_row_sum_normalize_matches_dense(self):
        A = power_law_graph(150, 4, seed=2)
        S = row_sum_normalize(A)
        dense = A.toarray().astype(np.float64)
        rs = dense.sum(axis=1, keepdims=True)
        rs[rs == 0.0] = 1.0
        np.testing.assert_allclose(
            S.toarray(), (dense / rs).astype(np.float32), rtol=1e-5, atol=1e-6
        )

    def test_empty_rows_survive(self):
        A = sp.csr_matrix(([3.0], ([1], [2])), shape=(5, 5), dtype=np.float32)
        for fn in (row_softmax, row_sum_normalize):
            out = fn(A)
            assert out.nnz == 1

    def test_deterministic(self):
        A = power_law_graph(100, 6, seed=3)
        assert np.array_equal(row_softmax(A).data, row_softmax(A).data)


class TestValidation:
    def _engine(self, server):
        return GraphEngine(server)

    def test_empty_graph_rejected(self, server):
        with pytest.raises(ValueError, match="no stages"):
            self._engine(server).run(GraphRequest(stages=[]))

    def test_duplicate_names_rejected(self, server):
        A = power_law_graph(50, 4, seed=1)
        H = _features(50)
        stages = [
            OpStage(name="x", op="spmm", matrix=A, inputs=(H,)),
            OpStage(name="x", op="spmm", matrix=A, inputs=(H,)),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            self._engine(server).run(GraphRequest(stages=stages))

    def test_forward_reference_rejected(self, server):
        A = power_law_graph(50, 4, seed=1)
        stages = [
            OpStage(name="a", op="spmm", matrix=A, inputs=("@b",)),
            OpStage(name="b", op="dense", inputs=("@a",), weight=np.eye(4)),
        ]
        with pytest.raises(ValueError, match="earlier stage"):
            self._engine(server).run(GraphRequest(stages=stages))

    def test_unknown_op_rejected(self, server):
        with pytest.raises(ValueError, match="unknown stage op"):
            self._engine(server).run(
                GraphRequest(stages=[OpStage(name="a", op="conv", inputs=(1,))])
            )

    def test_arity_enforced(self, server):
        A = power_law_graph(50, 4, seed=1)
        with pytest.raises(ValueError, match="2 input"):
            self._engine(server).run(
                GraphRequest(
                    stages=[OpStage(name="a", op="sddmm", matrix=A,
                                    inputs=(_features(50),))]
                )
            )

    def test_device_stage_needs_matrix(self, server):
        with pytest.raises(ValueError, match="needs a matrix"):
            self._engine(server).run(
                GraphRequest(
                    stages=[OpStage(name="a", op="spmm", inputs=(_features(50),))]
                )
            )

    def test_dense_needs_weight(self, server):
        with pytest.raises(ValueError, match="needs a weight"):
            self._engine(server).run(
                GraphRequest(
                    stages=[OpStage(name="a", op="dense", inputs=(_features(5),))]
                )
            )

    def test_unknown_normalize_kind(self, server):
        A = power_law_graph(50, 4, seed=1)
        with pytest.raises(ValueError, match="normalize kind"):
            self._engine(server).run(
                GraphRequest(
                    stages=[OpStage(name="a", op="normalize", inputs=(A,),
                                    kind="max")]
                )
            )


class TestChainNumerics:
    def test_gat_layer_matches_reference(self, server):
        A = power_law_graph(300, 6, seed=5)
        H = _features(300, seed=5)
        W = _features(16, J=8, seed=6)
        resp = server.serve_graph(
            GraphRequest(name="gat", stages=_gat_stages(A, H, W))
        )
        assert resp.ok and resp.device_stages == 2
        scores = sddmm_reference(A, H, H)
        attn = row_softmax(scores)
        agg = (attn @ H).astype(np.float32)
        expected = np.maximum(agg @ W, np.float32(0.0)).astype(np.float32)
        np.testing.assert_allclose(resp.output, expected, rtol=1e-3, atol=1e-3)
        np.testing.assert_allclose(
            resp.outputs["scores0"].toarray(), scores.toarray(),
            rtol=1e-3, atol=1e-3,
        )

    def test_spmv_stage(self, server):
        A = power_law_graph(200, 5, seed=7)
        ones = np.ones(200, dtype=np.float32)
        resp = server.serve_graph(
            GraphRequest(stages=[OpStage(name="deg", op="spmv", matrix=A,
                                         inputs=(ones,))])
        )
        assert resp.ok
        np.testing.assert_allclose(
            resp.output.ravel(), np.asarray(A @ ones).ravel(), rtol=1e-4
        )

    def test_failed_stage_stops_chain(self, server, monkeypatch):
        A = power_law_graph(100, 4, seed=8)
        H = _features(100, seed=8)

        from repro.serve.server import OpResponse, ResponseStatus

        def fail(request, **kwargs):
            return OpResponse(C=None, measurement=None, plan=None, key="",
                              cache_hit=False, status=ResponseStatus.FAILED,
                              admission_degraded=False, deadline_missed=False,
                              device_index=0, compose_overhead_s=0.0,
                              latency_ms=0.0, op=request.op)

        monkeypatch.setattr(server, "_serve_one", fail)
        resp = server.serve_graph(
            GraphRequest(stages=_gat_stages(A, H, _features(16, J=4, seed=9)))
        )
        assert resp.failed
        assert resp.device_stages == 1  # chain stopped at the first stage
        assert "attn0" not in resp.outputs


class TestStructuralReuse:
    def test_multi_layer_epoch_composes_once_per_pattern(self, liteform):
        """3-layer GAT epoch: one full compose per A pattern, every later
        device stage is a cache hit or a structural re-value."""
        server = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
        A = power_law_graph(400, 6, seed=10)
        H = _features(400, seed=10)
        stages = []
        h = None
        for i in range(3):
            W = _features(16, J=16, seed=20 + i)
            stages += _gat_stages(A, H if i == 0 else None, W, index=i,
                                  h_ref=h)
            h = f"@update{i}"
        resp = server.serve_graph(GraphRequest(name="epoch", stages=stages))
        assert resp.ok and resp.device_stages == 6
        m = server.metrics
        # Exactly one pipeline compose; everything else hit or re-valued.
        assert m.cache_misses - m.plan_reuses == 1
        assert m.cache_hits + m.plan_reuses + 1 == 6
        assert m.revalue_s >= 0.0
        assert resp.plan_reuses == m.plan_reuses

    def test_reuse_is_bit_identical_to_fresh_server(self, liteform):
        A = power_law_graph(350, 5, seed=11)
        H = _features(350, seed=11)
        W = _features(16, J=16, seed=12)
        stages = _gat_stages(A, H, W) + _gat_stages(
            A, None, _features(16, J=16, seed=13), index=1, h_ref="@update0"
        )
        g = GraphRequest(name="two", stages=stages)
        warm = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
        cold = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
        r1 = warm.serve_graph(g)
        assert warm.metrics.plan_reuses > 0
        # disable reuse entirely: every stage re-composes from scratch
        g2 = GraphRequest(name="two", stages=stages, reuse_structure=False)
        r2 = cold.serve_graph(g2)
        assert cold.metrics.plan_reuses == 0
        assert np.array_equal(r1.output, r2.output)

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=40),
        J=st.sampled_from([8, 16, 32]),
    )
    def test_two_layer_gcn_one_compose_bit_identical(self, liteform, seed, J):
        """Satellite: a 2-layer GCN chain over the same A performs exactly
        one compose and N launches, bit-identical to sequential un-batched
        execution of the same op requests."""
        lf = liteform
        A = power_law_graph(250, 5, seed=seed)
        H = np.random.default_rng(seed).standard_normal((250, J)).astype(np.float32)
        W0 = np.random.default_rng(seed + 1).standard_normal((J, J)).astype(np.float32)
        W1 = np.random.default_rng(seed + 2).standard_normal((J, J)).astype(np.float32)
        An = row_sum_normalize(A)
        stages = [
            OpStage(name="agg0", op="spmm", matrix=An, inputs=(H,)),
            OpStage(name="up0", op="dense", inputs=("@agg0",), weight=W0,
                    activation="relu"),
            OpStage(name="agg1", op="spmm", matrix=An, inputs=("@up0",)),
            OpStage(name="up1", op="dense", inputs=("@agg1",), weight=W1),
        ]
        server = SpMMServer(liteform=lf, cache=PlanCache(max_bytes=1 << 30))
        resp = server.serve_graph(GraphRequest(name="gcn2", stages=stages))
        assert resp.ok
        m = server.metrics
        # exactly one compose (the first agg misses; the second hits the
        # cache outright — same matrix, same J, same op)
        assert m.cache_misses == 1 and m.cache_hits == 1
        assert m.requests == 2  # N launches: one per aggregation stage
        # sequential un-batched reference through a fresh server
        seq = SpMMServer(liteform=lf, cache=PlanCache(max_bytes=1 << 30))
        a0 = seq.serve(OpRequest(matrix=An, B=H, J=J)).C
        u0 = np.maximum((a0 @ W0).astype(np.float32), np.float32(0.0))
        a1 = seq.serve(OpRequest(matrix=An, B=u0, J=J)).C
        u1 = (a1 @ W1).astype(np.float32)
        assert np.array_equal(resp.output, u1)


class TestWaveReplay:
    def test_wave_bit_identical_to_sequential(self, liteform):
        spec = GNNWorkloadSpec(dataset="cora", model="gat", layers=2, epochs=3,
                               feature_dim=16, hidden_dim=16, seed=4)
        sequential = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
        seq = [sequential.serve_graph(g) for g in generate_gnn_workload(spec)]
        waved = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
        wav = waved.serve_graphs(generate_gnn_workload(spec))
        assert len(seq) == len(wav) == 3
        for a, b in zip(seq, wav):
            assert np.array_equal(a.output, b.output)

    def test_wave_coalesces_shared_spmm_stages(self, liteform):
        """GCN epochs share the normalized adjacency *values*, so wave
        replay fuses their aggregation stages into one batched launch."""
        spec = GNNWorkloadSpec(dataset="cora", model="gcn", layers=1, epochs=2,
                               feature_dim=16, hidden_dim=16, seed=5)
        server = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
        responses = server.serve_graphs(generate_gnn_workload(spec))
        assert all(r.ok for r in responses)
        batched = [r.responses["agg0"].batch_size for r in responses]
        assert batched == [2, 2]

    def test_empty_wave(self, server):
        assert server.serve_graphs([]) == []


class TestWorkloadGenerator:
    def test_deterministic(self):
        spec = GNNWorkloadSpec(dataset="citeseer", layers=2, epochs=2, seed=9,
                               mean_gap_ms=3.0)
        a = generate_gnn_workload(spec)
        b = generate_gnn_workload(spec)
        assert [g.arrival_ms for g in a] == [g.arrival_ms for g in b]
        assert [len(g.stages) for g in a] == [len(g.stages) for g in b]

    def test_gcn_exercises_all_three_ops(self):
        spec = GNNWorkloadSpec(model="gcn", layers=1, epochs=1)
        ops = {s.op for s in generate_gnn_workload(spec)[0].stages}
        assert {"spmv", "spmm", "normalize", "dense"} <= ops

    def test_rejects_bad_spec(self):
        with pytest.raises(ValueError, match="unknown GNN model"):
            generate_gnn_workload(GNNWorkloadSpec(model="sage"))
        with pytest.raises(ValueError, match="layers"):
            generate_gnn_workload(GNNWorkloadSpec(layers=0))
        with pytest.raises(ValueError, match="epochs"):
            generate_gnn_workload(GNNWorkloadSpec(epochs=0))

    def test_arrivals_monotonic(self):
        spec = GNNWorkloadSpec(epochs=4, mean_gap_ms=2.0)
        arrivals = [g.arrival_ms for g in generate_gnn_workload(spec)]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > 0


class TestRoutingKey:
    def test_anchor_key_is_first_device_stage(self):
        A = power_law_graph(100, 4, seed=1)
        H = _features(100)
        g = GraphRequest(stages=_gat_stages(A, H, _features(16, J=4)))
        key = plan_key_for_graph(g)
        assert plan_op(key) == "sddmm"
        assert key.endswith("/J16")

    def test_fallback_key_for_local_only_graph(self):
        g = GraphRequest(
            name="locals",
            stages=[OpStage(name="d", op="dense", inputs=(_features(4, J=4),),
                            weight=np.eye(4, dtype=np.float32))],
        )
        assert plan_key_for_graph(g) == "graph:locals"


class TestSchedulerAndCluster:
    def test_scheduler_serves_graphs(self, liteform):
        server = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
        scheduler = Scheduler(server=server, max_batch=4)
        spec = GNNWorkloadSpec(layers=1, epochs=2, feature_dim=16,
                               hidden_dim=16, mean_gap_ms=2.0, seed=6)
        responses = scheduler.replay_graphs(generate_gnn_workload(spec))
        assert len(responses) == 2 and all(r.ok for r in responses)
        assert server.metrics.graphs == 2

    def test_scheduler_does_not_coalesce_across_ops(self, liteform):
        """Same matrix, same J: an sddmm and an spmm request must land in
        different batches (distinct (fingerprint, op, J) keys)."""
        server = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
        scheduler = Scheduler(server=server, max_batch=8)
        A = power_law_graph(200, 5, seed=13)
        H = _features(200, J=16, seed=13)
        requests = [
            OpRequest(matrix=A, B=H, J=16),
            OpRequest(matrix=A, B=None, J=16, operands=(H, H), op="sddmm"),
            OpRequest(matrix=A, B=H, J=16),
        ]
        for r in requests:
            scheduler.submit(r)
        responses = scheduler.drain()
        assert all(not r.failed for r in responses)
        sizes = sorted(r.batch_size for r in responses)
        assert sizes == [1, 2, 2]  # the two spmm fused, the sddmm alone

    def test_frontend_serves_graph_and_counts(self, liteform):
        frontend = ClusterFrontend(liteform, num_shards=2, seed=3)
        spec = GNNWorkloadSpec(layers=2, epochs=2, feature_dim=16,
                               hidden_dim=16, seed=7)
        graphs = generate_gnn_workload(spec)
        responses = [frontend.serve_graph(g) for g in graphs]
        assert all(r.ok for r in responses)
        m = frontend.metrics
        assert m.graphs == 2
        assert m.completed == 2 and m.failed == 0
        assert m.graph_stages == sum(r.device_stages for r in responses)
        snap = frontend.snapshot()
        assert snap["cluster"]["graphs"] == 2
        assert snap["cluster"]["plan_reuses"] >= 1

    def test_frontend_routes_same_anchor_to_one_shard(self, liteform):
        frontend = ClusterFrontend(liteform, num_shards=3, seed=3)
        spec = GNNWorkloadSpec(layers=1, epochs=3, feature_dim=16,
                               hidden_dim=16, seed=8)
        for g in generate_gnn_workload(spec):
            frontend.serve_graph(g)
        loads = [s["requests"] for s in frontend.snapshot()["shards"]]
        # every epoch shares the anchor adjacency -> one shard took all
        assert sorted(loads, reverse=True)[1:] == [0, 0]


class TestGraphMetrics:
    def test_serve_graph_counters_registered(self, server):
        A = power_law_graph(120, 4, seed=14)
        H = _features(120, seed=14)
        server.serve_graph(
            GraphRequest(stages=_gat_stages(A, H, _features(16, J=8, seed=15)))
        )
        snap = server.metrics.snapshot()
        assert snap["graphs"] == 1
        assert snap["graph_stages"] == 2
        names = set(server.metrics.registry.names())
        assert {
            "serve_graph_requests_total",
            "serve_graph_stages_total",
            "serve_graph_plan_reuses_total",
            "serve_graph_revalue_seconds",
        } <= names

    def test_graph_spans_emitted(self, liteform):
        from repro.obs import Tracer, set_tracer

        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            server = SpMMServer(liteform=liteform,
                                cache=PlanCache(max_bytes=1 << 30))
            A = power_law_graph(100, 4, seed=16)
            H = _features(100, seed=16)
            server.serve_graph(
                GraphRequest(name="traced",
                             stages=_gat_stages(A, H, _features(16, J=8)))
            )
        finally:
            set_tracer(previous)
        names = [s.name for s in tracer.spans]
        assert "graph" in names
        assert names.count("stage") == 4
        g = next(s for s in tracer.spans if s.name == "graph")
        assert g.attributes["status"] == "ok"
        trace_ids = {s.trace_id for s in tracer.spans if s.name == "stage"}
        assert len(trace_ids) == 1  # all stages share the graph's trace
