"""Serving metrics: bounded LatencySeries and the registry migration."""

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.serve.metrics import DEFAULT_MAX_SAMPLES, LatencySeries, ServerMetrics


class TestLatencySeriesBounded:
    def test_memory_is_bounded_under_sustained_traffic(self):
        s = LatencySeries(max_samples=128)
        for i in range(100_000):
            s.add(float(i % 1000))
        assert len(s.values) == 128  # reservoir, not an unbounded list
        assert len(s) == 100_000  # observation count stays exact

    def test_exact_below_capacity(self):
        s = LatencySeries(max_samples=64)
        data = np.random.default_rng(3).uniform(0, 10, size=50)
        for v in data:
            s.add(float(v))
        assert s.percentile(50) == pytest.approx(np.percentile(data, 50))
        assert s.mean == pytest.approx(data.mean())
        assert s.max == pytest.approx(data.max())

    def test_mean_and_max_stay_exact_beyond_capacity(self):
        s = LatencySeries(max_samples=32)
        data = np.random.default_rng(4).uniform(0, 100, size=5000)
        for v in data:
            s.add(float(v))
        assert s.mean == pytest.approx(data.mean())
        assert s.max == pytest.approx(data.max())

    def test_reservoir_percentiles_track_distribution(self):
        s = LatencySeries(max_samples=512)
        data = np.random.default_rng(5).exponential(10.0, size=20_000)
        for v in data:
            s.add(float(v))
        assert s.percentile(50) == pytest.approx(np.percentile(data, 50), rel=0.25)
        assert s.percentile(95) == pytest.approx(np.percentile(data, 95), rel=0.25)

    def test_deterministic_given_seed(self):
        a, b = LatencySeries(seed=7, max_samples=16), LatencySeries(seed=7, max_samples=16)
        for i in range(1000):
            a.add(float(i))
            b.add(float(i))
        np.testing.assert_array_equal(a.values, b.values)

    def test_summary_contract(self):
        s = LatencySeries()
        assert set(s.summary()) == {"p50", "p95", "p99", "mean", "max"}
        assert s.summary()["p50"] == 0.0  # empty series
        s.add(2.0)
        assert s.summary()["max"] == 2.0

    def test_default_capacity_and_validation(self):
        assert LatencySeries().max_samples == DEFAULT_MAX_SAMPLES
        with pytest.raises(ValueError):
            LatencySeries(max_samples=0)


class TestServerMetricsRegistry:
    def test_counters_published_as_callbacks(self):
        m = ServerMetrics()
        m.requests += 3
        m.cache_hits += 2
        m.cache_misses += 1
        r = m.registry
        assert r.get("serve_requests_total").value == 3
        assert r.get("serve_cache_hits_total").value == 2
        assert r.get("serve_cache_hit_rate").value == pytest.approx(2 / 3)

    def test_latency_histograms_follow_observations(self):
        m = ServerMetrics()
        m.observe_latency(exec_ms=1.0, total_ms=4.0)
        m.observe_latency(exec_ms=2.0, total_ms=8.0)
        assert len(m.exec_ms) == 2 and len(m.total_ms) == 2
        assert m.registry.get("serve_exec_latency_ms").count == 2
        assert m.registry.get("serve_request_latency_ms").mean == pytest.approx(6.0)

    def test_explicit_registry_is_used(self):
        r = MetricsRegistry()
        m = ServerMetrics(registry=r)
        m.requests += 1
        assert r.get("serve_requests_total").value == 1
        assert "serve_requests_total" in r.render_prometheus()

    def test_snapshot_contract_unchanged(self):
        m = ServerMetrics()
        m.requests += 1
        m.observe_latency(1.0, 2.0)
        snap = m.snapshot()
        for key in ("requests", "cache_hits", "cache_misses", "hit_rate",
                    "degraded", "deadline_misses", "failed",
                    "compose_spent_s", "compose_saved_s", "exec_ms", "total_ms"):
            assert key in snap, key
        assert set(snap["exec_ms"]) == {"p50", "p95", "p99", "mean", "max"}
