"""Server recovery: retries, circuit breaker, OOM degradation, accounting."""

from dataclasses import dataclass
from functools import partial

import numpy as np
import pytest

from repro.core import LiteForm, generate_training_data
from repro.formats.csr import CSRFormat
from repro.gpu import FaultPolicy, FaultyDevice, SimulatedDevice, SimulatedOOMError
from repro.kernels import spmm_reference
from repro.matrices import SuiteSparseLikeCollection, power_law_graph
from repro.serve import CircuitBreaker, PlanCache, RetryPolicy, SpMMRequest, SpMMServer
from repro.serve.resilience import CLOSED, HALF_OPEN, OPEN


@pytest.fixture(scope="module")
def liteform():
    coll = SuiteSparseLikeCollection(size=6, max_rows=2500, seed=11)
    return LiteForm().fit(generate_training_data(coll, J_values=(32,)))


def _request(seed=1, n=400, J=32, with_B=False):
    A = power_law_graph(n, 6, seed=seed)
    B = None
    if with_B:
        B = np.random.default_rng(seed).standard_normal(
            (A.shape[1], J)
        ).astype(np.float32)
    return SpMMRequest(matrix=A, B=B, J=J)


def _faulty_pool(rates, seed=5, **kwargs):
    return [
        FaultyDevice(faults=FaultPolicy(seed=seed + i, **{**kwargs, **rate}))
        for i, rate in enumerate(rates)
    ]


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        p = RetryPolicy(backoff_base_ms=1.0, backoff_factor=2.0, backoff_max_ms=5.0)
        assert p.backoff_ms(1) == 1.0
        assert p.backoff_ms(2) == 2.0
        assert p.backoff_ms(3) == 4.0
        assert p.backoff_ms(4) == 5.0  # capped

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_ms(0)


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        b = CircuitBreaker(failure_threshold=3, cooldown_s=10.0, clock=lambda: 0.0)
        assert not b.record_failure() and b.state == CLOSED
        assert not b.record_failure() and b.state == CLOSED
        assert b.record_failure()  # third consecutive failure trips
        assert b.state == OPEN and b.trips == 1
        assert not b.allow()

    def test_fatal_failure_trips_immediately(self):
        b = CircuitBreaker(failure_threshold=3)
        assert b.record_failure(fatal=True)
        assert b.state == OPEN

    def test_half_open_probe_recovers(self):
        now = [0.0]
        b = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=lambda: now[0])
        b.record_failure()
        assert not b.allow()  # cooldown not elapsed
        now[0] = 6.0
        assert b.allow() and b.state == HALF_OPEN
        b.record_success()
        assert b.state == CLOSED and b.allow()

    def test_half_open_failure_reopens(self):
        now = [0.0]
        b = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=lambda: now[0])
        b.record_failure()
        now[0] = 6.0
        assert b.allow() and b.state == HALF_OPEN
        assert b.record_failure()  # probe failed
        assert b.state == OPEN and b.trips == 2
        assert not b.allow()  # new cooldown from the probe failure

    def test_success_resets_failure_streak(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record_failure()
        b.record_success()
        assert not b.record_failure()  # streak restarted
        assert b.state == CLOSED


class TestTransientRecovery:
    def test_retries_recover_injected_faults(self, liteform):
        server = SpMMServer(
            liteform=liteform,
            cache=PlanCache(max_bytes=1 << 30),
            devices=_faulty_pool([{"transient_oom_rate": 0.25}] * 2),
            retry=RetryPolicy(max_attempts=4),
        )
        req = _request(seed=21)
        for _ in range(60):
            server.serve(req)
        m = server.metrics
        assert m.retries > 0, "fault rate should have forced retries"
        assert m.recovered > 0
        assert m.availability >= 0.98
        # every failed attempt is visible per-device
        assert sum(s["failures"] for s in server.snapshot()["devices"]) >= m.retries

    def test_recovered_response_flags_and_numerics(self, liteform):
        server = SpMMServer(
            liteform=liteform,
            cache=PlanCache(max_bytes=1 << 30),
            devices=_faulty_pool([{"transient_oom_rate": 1.0}, {}]),
            retry=RetryPolicy(max_attempts=2),
        )
        req = _request(seed=22, with_B=True)
        resp = server.serve(req)
        assert not resp.failed and resp.recovered
        assert resp.attempts == 2 and resp.backoff_ms > 0
        assert resp.device_index == 1  # retried away from the faulty device
        np.testing.assert_allclose(
            resp.C, spmm_reference(req.matrix, req.B), rtol=1e-4, atol=1e-4
        )

    def test_latency_includes_backoff(self, liteform):
        server = SpMMServer(
            liteform=liteform,
            cache=PlanCache(max_bytes=1 << 30),
            devices=_faulty_pool([{"transient_oom_rate": 1.0}, {}]),
            retry=RetryPolicy(max_attempts=2, backoff_base_ms=3.0),
        )
        resp = server.serve(_request(seed=23))
        assert resp.backoff_ms == 3.0
        assert resp.latency_ms == pytest.approx(
            resp.compose_overhead_s * 1e3 + resp.backoff_ms + resp.measurement.time_ms
        )


class TestFailureAccounting:
    """Regression: failed requests must not pollute the success series."""

    def _always_failing_server(self, liteform):
        return SpMMServer(
            liteform=liteform,
            cache=PlanCache(max_bytes=1 << 30),
            devices=_faulty_pool([{"transient_oom_rate": 1.0}]),
            retry=RetryPolicy(max_attempts=2),
        )

    def test_failed_requests_skip_success_series(self, liteform):
        server = self._always_failing_server(liteform)
        ok = server.serve(_request(seed=24))  # fails: both attempts OOM
        assert ok.failed
        m = server.metrics
        assert m.failed == 1
        assert len(m.exec_ms) == 0 and len(m.total_ms) == 0
        assert len(m.failed_ms) == 1
        assert m.failed_ms.max > 0  # overhead + backoff was accounted

    def test_failed_requests_not_counted_as_served_work(self, liteform):
        server = self._always_failing_server(liteform)
        server.serve(_request(seed=25))
        dev = server.snapshot()["devices"][0]
        assert dev["requests"] == 0  # not bumped as served work
        assert dev["failures"] == 2  # both attempts recorded per-device

    def test_mixed_traffic_keeps_percentiles_clean(self, liteform):
        server = SpMMServer(
            liteform=liteform,
            cache=PlanCache(max_bytes=1 << 30),
            devices=_faulty_pool([{"transient_oom_rate": 0.5}], seed=9),
            retry=RetryPolicy(max_attempts=1),
        )
        req = _request(seed=26)
        for _ in range(40):
            server.serve(req)
        m = server.metrics
        assert 0 < m.failed < 40
        assert len(m.exec_ms) == 40 - m.failed
        assert len(m.failed_ms) == m.failed
        # all served requests executed, so the success p50 cannot be zero
        assert m.exec_ms.percentile(50) > 0


class TestCircuitBreakerIntegration:
    def test_dead_device_is_ejected_and_traffic_continues(self, liteform):
        server = SpMMServer(
            liteform=liteform,
            cache=PlanCache(max_bytes=1 << 30),
            devices=_faulty_pool([{"death_rate": 1.0}, {}]),
            retry=RetryPolicy(max_attempts=3),
            breaker_cooldown_s=60.0,
        )
        req = _request(seed=27)
        for _ in range(10):
            server.serve(req)
        m = server.metrics
        assert m.failed == 0 and m.device_lost == 1 and m.breaker_open == 1
        devices = server.snapshot()["devices"]
        assert devices[0]["lost"] and devices[0]["breaker"] == "open"
        assert devices[0]["requests"] == 0 and devices[0]["failures"] == 1
        assert devices[1]["requests"] == 10

    def test_all_devices_down_still_answers(self, liteform):
        server = SpMMServer(
            liteform=liteform,
            cache=PlanCache(max_bytes=1 << 30),
            devices=_faulty_pool([{"death_rate": 1.0}]),
            retry=RetryPolicy(max_attempts=2),
            breaker_cooldown_s=60.0,
        )
        for seed in (28, 29):
            resp = server.serve(_request(seed=seed))
            assert resp.failed and resp.C is None
        assert server.metrics.failed == 2
        assert server.metrics.availability == 0.0


@dataclass
class _StructuralOnceDevice(SimulatedDevice):
    """Raises one structural OOM, then behaves normally."""

    tripped: bool = False

    def measure(self, stats):
        if not self.tripped:
            self.tripped = True
            raise SimulatedOOMError(2 * self.spec.dram_bytes, self.spec.dram_bytes)
        return super().measure(stats)


class TestOOMDegradation:
    def _cell_server(self, liteform, monkeypatch, **kwargs):
        # force the CELL path so there is a bigger-footprint plan to degrade
        monkeypatch.setattr(
            liteform,
            "compose_csr",
            partial(LiteForm.compose_csr, liteform, force_cell=True),
        )
        return SpMMServer(
            liteform=liteform, cache=PlanCache(max_bytes=1 << 30), **kwargs
        )

    def test_structural_oom_degrades_to_csr(self, liteform, monkeypatch):
        server = self._cell_server(
            liteform, monkeypatch, devices=[_StructuralOnceDevice()]
        )
        req = _request(seed=30, with_B=True)
        resp = server.serve(req)
        assert not resp.failed and resp.degraded_oom
        assert isinstance(resp.plan.fmt, CSRFormat)
        assert server.metrics.oom_degraded == 1
        np.testing.assert_allclose(
            resp.C, spmm_reference(req.matrix, req.B), rtol=1e-4, atol=1e-4
        )

    def test_degraded_plan_replaces_cache_entry(self, liteform, monkeypatch):
        server = self._cell_server(
            liteform, monkeypatch, devices=[_StructuralOnceDevice()]
        )
        req = _request(seed=30)
        first = server.serve(req)
        assert first.degraded_oom
        again = server.serve(req)
        assert again.cache_hit and not again.failed
        assert isinstance(again.plan.fmt, CSRFormat)
        assert server.metrics.oom_degraded == 1  # OOM paid exactly once

    def test_degradation_does_not_consume_retry_budget(self, liteform, monkeypatch):
        server = self._cell_server(
            liteform,
            monkeypatch,
            devices=[_StructuralOnceDevice()],
            retry=RetryPolicy(max_attempts=1),
        )
        resp = server.serve(_request(seed=31))
        assert not resp.failed and resp.degraded_oom
        assert server.metrics.retries == 0

    def test_degradation_disabled_fails_the_request(self, liteform, monkeypatch):
        server = self._cell_server(
            liteform,
            monkeypatch,
            devices=[_StructuralOnceDevice()],
            degrade_on_oom=False,
            retry=RetryPolicy(max_attempts=3),
        )
        resp = server.serve(_request(seed=32))
        assert resp.failed and not resp.degraded_oom
        # structural OOMs are not retried: the plan can never fit
        assert resp.attempts == 1
        assert server.metrics.oom_degraded == 0
