"""Batched scheduler: coalescing, EDF, backpressure, batch numerics."""

import numpy as np
import pytest

from repro.core import LiteForm, generate_training_data
from repro.gpu import FaultPolicy, FaultyDevice
from repro.matrices import SuiteSparseLikeCollection, power_law_graph
from repro.serve import (
    Batcher,
    PlanCache,
    ResponseStatus,
    RetryPolicy,
    Scheduler,
    SpMMRequest,
    SpMMServer,
    WorkloadSpec,
    generate_workload,
)
from repro.serve.fingerprint import fingerprint_csr, plan_key
from repro.serve.scheduler import _QueuedRequest


@pytest.fixture(scope="module")
def liteform():
    coll = SuiteSparseLikeCollection(size=6, max_rows=2500, seed=11)
    return LiteForm().fit(generate_training_data(coll, J_values=(32,)))


@pytest.fixture()
def server(liteform):
    return SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))


def _request(seed=1, n=400, J=32, deadline_ms=None, arrival_ms=0.0, with_B=True):
    A = power_law_graph(n, 6, seed=seed)
    B = None
    if with_B:
        B = np.random.default_rng(seed).standard_normal(
            (A.shape[1], J)
        ).astype(np.float32)
    return SpMMRequest(
        matrix=A, B=B, J=J, deadline_ms=deadline_ms, arrival_ms=arrival_ms
    )


def _queued(request, ticket=0, enqueued_ms=0.0):
    A = SpMMServer._canonical(request.matrix)
    return _QueuedRequest(
        ticket=ticket,
        request=request,
        A=A,
        key=plan_key(fingerprint_csr(A), request.J),
        enqueued_ms=enqueued_ms,
    )


class TestBatcher:
    def test_coalesces_same_plan_key(self):
        b = Batcher(max_batch=8, max_wait_ms=1.0)
        for t in range(3):
            b.push(_queued(_request(seed=1), ticket=t))
        groups = b.ready(now_ms=5.0)
        assert len(groups) == 1 and len(groups[0]) == 3
        assert len(b) == 0

    def test_same_fingerprint_mixed_J_does_not_coalesce(self):
        b = Batcher(max_batch=8, max_wait_ms=1.0)
        b.push(_queued(_request(seed=1, J=32), ticket=0))
        b.push(_queued(_request(seed=1, J=64), ticket=1))
        groups = b.ready(now_ms=5.0)
        assert len(groups) == 2
        assert all(len(g) == 1 for g in groups)

    def test_mixed_operand_kinds_do_not_coalesce(self):
        # Same (fingerprint, J), but one request has no B: the plan may
        # be shared, the launch cannot.
        b = Batcher(max_batch=8, max_wait_ms=1.0)
        b.push(_queued(_request(seed=1, with_B=True), ticket=0))
        b.push(_queued(_request(seed=1, with_B=False), ticket=1))
        assert len(b.ready(now_ms=5.0)) == 2

    def test_full_group_ready_before_timeout(self):
        b = Batcher(max_batch=2, max_wait_ms=1e9)
        b.push(_queued(_request(seed=1), ticket=0))
        assert b.ready(now_ms=0.0) == []
        b.push(_queued(_request(seed=1), ticket=1))
        groups = b.ready(now_ms=0.0)
        assert len(groups) == 1 and len(groups[0]) == 2

    def test_partial_group_waits_until_timeout(self):
        b = Batcher(max_batch=8, max_wait_ms=2.0)
        b.push(_queued(_request(seed=1), enqueued_ms=1.0))
        assert b.ready(now_ms=2.0) == []
        assert b.next_ready_ms() == 3.0
        assert len(b.ready(now_ms=3.0)) == 1

    def test_flush_ignores_age(self):
        b = Batcher(max_batch=8, max_wait_ms=1e9)
        b.push(_queued(_request(seed=1)))
        assert len(b.ready(now_ms=0.0, flush=True)) == 1

    def test_edf_orders_ready_groups(self):
        b = Batcher(max_batch=8, max_wait_ms=0.0)
        b.push(_queued(_request(seed=1, deadline_ms=None), ticket=0))
        b.push(_queued(_request(seed=2, deadline_ms=5.0), ticket=1))
        b.push(_queued(_request(seed=3, deadline_ms=1.0), ticket=2))
        groups = b.ready(now_ms=10.0)
        assert [g[0].ticket for g in groups] == [2, 1, 0]

    def test_oversize_group_split_in_edf_order(self):
        b = Batcher(max_batch=2, max_wait_ms=0.0)
        deadlines = [None, 3.0, 1.0]
        for t, d in enumerate(deadlines):
            b.push(_queued(_request(seed=1, deadline_ms=d), ticket=t))
        groups = b.ready(now_ms=1.0)
        # First batch takes the two tightest deadlines.
        assert sorted(q.ticket for q in groups[0]) == [1, 2]
        assert [q.ticket for q in groups[1]] == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            Batcher(max_batch=0)
        with pytest.raises(ValueError):
            Batcher(max_wait_ms=-1.0)


class TestServeBatch:
    def test_batched_equals_individual_bitwise(self, server, liteform):
        requests = []
        rng = np.random.default_rng(0)
        A = power_law_graph(500, 6, seed=3)
        for _ in range(4):
            B = rng.standard_normal((A.shape[1], 32)).astype(np.float32)
            requests.append(SpMMRequest(matrix=A, B=B, J=32))
        sequential = SpMMServer(liteform=liteform)
        expected = [sequential.serve(r).C for r in requests]
        responses = server.serve_batch(requests)
        assert all(
            np.array_equal(r.C, e) for r, e in zip(responses, expected)
        )
        assert all(r.batch_size == 4 for r in responses)
        # One lookup for the whole group: one miss, no hits.
        assert server.metrics.cache_misses == 1
        assert server.metrics.cache_hits == 0
        assert server.metrics.requests == 4

    def test_rejects_mixed_plan_keys(self, server):
        with pytest.raises(ValueError, match="one .fingerprint, J. group"):
            server.serve_batch([_request(seed=1), _request(seed=2)])

    def test_rejects_mixed_operand_kinds(self, server):
        with pytest.raises(ValueError, match="mix numeric and measure-only"):
            server.serve_batch(
                [_request(seed=1, with_B=True), _request(seed=1, with_B=False)]
            )

    def test_singleton_batch_is_plain_serve(self, server):
        [resp] = server.serve_batch([_request(seed=1)])
        assert resp.batch_size == 1 and resp.status is ResponseStatus.OK

    def test_queue_wait_counts_against_deadline(self, server):
        # Warm the overhead estimator so admission has something to act on.
        server.serve(_request(seed=1))
        estimate_ms = server.estimate_compose_s(
            server._canonical(_request(seed=2).matrix).nnz
        ) * 1e3
        tight = _request(seed=2, deadline_ms=estimate_ms * 2)
        # Without queueing delay the deadline admits the compose...
        probe = SpMMServer(liteform=server.liteform)
        probe._compose_s_per_nnz = server._compose_s_per_nnz
        assert not probe.serve(tight).admission_degraded
        # ...but a large queue wait eats the budget and degrades it.
        [resp] = server.serve_batch(
            [tight], queue_waits_ms=[estimate_ms * 1.5]
        )
        assert resp.admission_degraded
        assert resp.status is ResponseStatus.DEGRADED
        assert resp.queue_wait_ms == pytest.approx(estimate_ms * 1.5)


class TestScheduler:
    def _workload(self, n=40, seed=3, rate=20_000.0):
        return generate_workload(WorkloadSpec(
            num_requests=n, num_matrices=5, zipf_s=1.3, J_choices=(32,),
            max_rows=2000, seed=seed, arrival_rate_rps=rate,
        ))

    def test_drain_matches_sequential_bitwise(self, liteform):
        requests = self._workload()
        sequential = SpMMServer(liteform=liteform)
        expected = [sequential.serve(r).C for r in requests]
        sched = Scheduler(
            server=SpMMServer(liteform=liteform), max_batch=8, max_wait_ms=2.0
        )
        for r in requests:
            sched.submit(r)
        out = sched.drain()
        assert len(out) == len(requests)
        assert all(np.array_equal(r.C, e) for r, e in zip(out, expected))
        m = sched.metrics
        assert m.dispatched == len(requests)
        assert m.batches < len(requests)  # something actually coalesced
        assert m.coalesce_rate > 0.5
        assert m.makespan_ms > 0

    def test_fewer_lookups_than_sequential(self, liteform):
        requests = self._workload()
        sched = Scheduler(
            server=SpMMServer(liteform=liteform), max_batch=8, max_wait_ms=2.0
        )
        sched.replay(requests)
        lookups = (
            sched.server.metrics.cache_hits + sched.server.metrics.cache_misses
        )
        assert lookups == sched.metrics.batches
        assert lookups < len(requests)

    def test_submit_poll_drain_surface(self, liteform):
        sched = Scheduler(server=SpMMServer(liteform=liteform))
        tickets = [sched.submit(_request(seed=1)), sched.submit(_request(seed=2))]
        assert sched.poll(tickets[0]) is None  # nothing ran yet
        out = sched.drain()
        assert len(out) == 2
        assert sched.poll(tickets[0]) is None  # drained responses are claimed
        t3 = sched.submit(_request(seed=3))
        sched.drain()
        assert sched.poll(t3) is None

    def test_poll_claims_exactly_once(self, liteform):
        sched = Scheduler(server=SpMMServer(liteform=liteform))
        ticket = sched.submit(_request(seed=1))
        sched._run()
        assert sched.poll(ticket) is not None
        assert sched.poll(ticket) is None

    def test_queue_wait_recorded(self, liteform):
        requests = self._workload(rate=5_000.0)
        sched = Scheduler(
            server=SpMMServer(liteform=liteform), max_batch=8, max_wait_ms=3.0
        )
        m = sched.replay(requests)
        assert len(m.queue_wait_ms) == m.dispatched
        assert m.queue_wait_ms.max <= 3.0 + 1e-9
        assert "queue_wait_ms" in m.snapshot()

    def test_backpressure_sheds_to_degraded_path(self, liteform):
        requests = self._workload(n=60, rate=50_000.0)
        sched = Scheduler(
            server=SpMMServer(liteform=liteform),
            max_batch=4,
            max_wait_ms=1e6,  # nothing dispatches on timeout
            max_queue=8,
        )
        for r in requests:
            sched.submit(r)
        out = sched.drain()
        m = sched.metrics
        assert m.shed > 0
        assert m.shed + m.dispatched == len(requests)
        shed = [r for r in out if r.shed]
        assert len(shed) == m.shed
        # Shed requests are still answered (degraded on a miss, cached
        # plan on a hit), never dropped.
        assert all(r.status is not ResponseStatus.FAILED for r in shed)
        assert all(r.C is not None for r in shed)

    def test_drain_with_inflight_device_failures(self, liteform):
        requests = self._workload(n=30)
        pool = [
            FaultyDevice(faults=FaultPolicy(transient_oom_rate=0.4, seed=7)),
            FaultyDevice(faults=FaultPolicy(seed=8)),
        ]
        server = SpMMServer(
            liteform=liteform,
            devices=pool,
            retry=RetryPolicy(max_attempts=4),
        )
        sched = Scheduler(server=server, max_batch=8, max_wait_ms=2.0)
        for r in requests:
            sched.submit(r)
        out = sched.drain()
        assert len(out) == len(requests)
        assert server.metrics.retries > 0
        assert all(r.status is not ResponseStatus.FAILED for r in out)
        assert all(r.C is not None for r in out)
        recovered = [r for r in out if r.recovered]
        assert recovered and all(r.attempts > 1 for r in recovered)

    def test_untimed_trace_batches_at_time_zero(self, liteform):
        requests = self._workload(rate=None)
        assert all(r.arrival_ms == 0.0 for r in requests)
        sched = Scheduler(
            server=SpMMServer(liteform=liteform), max_batch=8, max_wait_ms=2.0
        )
        m = sched.replay(requests)
        assert m.dispatched == len(requests)
        assert m.queue_wait_ms.max == 0.0

    def test_validation(self, liteform):
        with pytest.raises(ValueError):
            Scheduler(server=SpMMServer(liteform=liteform), max_queue=0)


class TestArrivalWorkload:
    def test_arrivals_default_zero(self):
        reqs = generate_workload(WorkloadSpec(
            num_requests=10, num_matrices=3, max_rows=2000,
            with_operands=False,
        ))
        assert all(r.arrival_ms == 0.0 for r in reqs)

    def test_poisson_arrivals_sorted_and_seeded(self):
        spec = WorkloadSpec(
            num_requests=50, num_matrices=3, max_rows=2000,
            with_operands=False, arrival_rate_rps=1000.0, seed=4,
        )
        a = [r.arrival_ms for r in generate_workload(spec)]
        b = [r.arrival_ms for r in generate_workload(spec)]
        assert a == b
        assert all(x <= y for x, y in zip(a, a[1:]))
        assert a[0] > 0.0
        # Mean inter-arrival gap tracks the requested rate (1 ms here).
        gaps = np.diff([0.0, *a])
        assert 0.5 < gaps.mean() < 2.0

    def test_burst_arrivals_share_timestamps(self):
        spec = WorkloadSpec(
            num_requests=32, num_matrices=3, max_rows=2000,
            with_operands=False, arrival_rate_rps=1000.0,
            arrival_process="burst", burst_size=8, seed=4,
        )
        times = [r.arrival_ms for r in generate_workload(spec)]
        assert len(set(times)) == 4  # 32 requests / bursts of 8

    def test_arrivals_do_not_perturb_trace(self):
        base = WorkloadSpec(
            num_requests=40, num_matrices=4, max_rows=2000, seed=9,
        )
        timed = WorkloadSpec(
            num_requests=40, num_matrices=4, max_rows=2000, seed=9,
            arrival_rate_rps=500.0,
        )
        for r1, r2 in zip(generate_workload(base), generate_workload(timed)):
            assert r1.name == r2.name and r1.J == r2.J
            assert np.array_equal(r1.B, r2.B)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(arrival_rate_rps=0.0)
        with pytest.raises(ValueError):
            WorkloadSpec(arrival_process="uniform")
        with pytest.raises(ValueError):
            WorkloadSpec(burst_size=0)
