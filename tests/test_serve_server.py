"""SpMMServer behaviour: hits, numerics, admission control, device pool."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import LiteForm, generate_training_data
from repro.formats.base import as_csr
from repro.kernels import spmm_reference
from repro.matrices import SuiteSparseLikeCollection, power_law_graph
from repro.serve import PlanCache, SpMMRequest, SpMMServer


@pytest.fixture(scope="module")
def liteform():
    coll = SuiteSparseLikeCollection(size=6, max_rows=2500, seed=11)
    return LiteForm().fit(generate_training_data(coll, J_values=(32,)))


@pytest.fixture()
def server(liteform):
    return SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))


def _request(seed=1, n=400, J=32, deadline_ms=None):
    A = power_law_graph(n, 6, seed=seed)
    B = np.random.default_rng(seed).standard_normal((A.shape[1], J)).astype(np.float32)
    return SpMMRequest(matrix=A, B=B, J=J, deadline_ms=deadline_ms)


class TestCaching:
    def test_second_request_hits(self, server):
        req = _request()
        first = server.serve(req)
        second = server.serve(req)
        assert not first.cache_hit and second.cache_hit
        assert server.metrics.cache_hits == 1 and server.metrics.cache_misses == 1

    def test_hit_is_numerically_identical_to_fresh_compose(self, server, liteform):
        req = _request(seed=3)
        server.serve(req)
        hit = server.serve(req)
        assert hit.cache_hit
        fresh_plan = liteform.compose(req.matrix, req.J)
        C_fresh, _ = fresh_plan.kernel.run(fresh_plan.fmt, req.B, liteform.device)
        np.testing.assert_array_equal(hit.C, C_fresh)
        np.testing.assert_allclose(
            hit.C, spmm_reference(req.matrix, req.B), rtol=1e-4, atol=1e-4
        )

    def test_hit_credits_composition_time_saved(self, server):
        req = _request(seed=4)
        miss = server.serve(req)
        assert server.metrics.compose_saved_s == 0.0
        server.serve(req)
        assert server.metrics.compose_saved_s == pytest.approx(
            miss.plan.overhead.total_s
        )

    def test_different_J_is_a_different_plan(self, server):
        A = power_law_graph(300, 5, seed=5)
        r32 = server.serve(SpMMRequest(matrix=A, B=None, J=32))
        r64 = server.serve(SpMMRequest(matrix=A, B=None, J=64))
        assert not r64.cache_hit
        assert r32.key != r64.key

    def test_measure_only_request(self, server):
        req = _request(seed=6)
        resp = server.serve(SpMMRequest(matrix=req.matrix, B=None, J=32))
        assert resp.C is None
        assert resp.measurement is not None and resp.measurement.time_s > 0

    def test_non_canonical_csr_shares_key_with_canonical(self, server):
        """Regression: an unsorted-indices CSR must not bypass as_csr —
        the same logical matrix would get a second cache key and kernels
        would see unsorted indices."""
        A = power_law_graph(300, 5, seed=16)
        indices, data = A.indices.copy(), A.data.copy()
        for i in range(A.shape[0]):  # reverse each row's column order
            lo, hi = A.indptr[i], A.indptr[i + 1]
            indices[lo:hi] = indices[lo:hi][::-1]
            data[lo:hi] = data[lo:hi][::-1]
        unsorted = sp.csr_matrix((data, indices, A.indptr.copy()), shape=A.shape)
        assert not unsorted.has_canonical_format
        first = server.serve(SpMMRequest(matrix=A, B=None, J=32))
        second = server.serve(SpMMRequest(matrix=unsorted, B=None, J=32))
        assert second.key == first.key
        assert second.cache_hit

    def test_duplicate_entries_csr_shares_key_with_summed(self, server):
        """A CSR carrying duplicate (row, col) entries is canonicalized."""
        dup = sp.csr_matrix(
            (
                np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32),
                np.array([1, 1, 2, 3]),
                np.array([0, 2, 4]),
            ),
            shape=(2, 4),
        )
        summed = as_csr(dup.copy())
        assert summed.nnz == 3  # the duplicate collapsed
        r1 = server.serve(SpMMRequest(matrix=dup, B=None, J=32))
        r2 = server.serve(SpMMRequest(matrix=summed, B=None, J=32))
        assert r1.key == r2.key and r2.cache_hit


class TestAdmissionControl:
    def test_no_history_admits_optimistically(self, server):
        resp = server.serve(_request(seed=7, deadline_ms=1e-9))
        assert not resp.degraded  # nothing to estimate from yet
        assert resp.plan.overhead.total_s > 0

    def test_deadline_fallback_triggers_and_is_counted(self, server):
        server.serve(_request(seed=8))  # prime the overhead estimate
        resp = server.serve(_request(seed=9, deadline_ms=1e-9))
        assert resp.degraded
        assert not resp.plan.use_cell
        assert type(resp.plan.fmt).__name__ == "CSRFormat"
        assert server.metrics.degraded == 1
        # the numeric answer is still right on the degraded path
        req = _request(seed=9, deadline_ms=1e-9)
        np.testing.assert_allclose(
            resp.C, spmm_reference(req.matrix, req.B), rtol=1e-4, atol=1e-4
        )

    def test_degraded_plan_is_not_cached(self, server):
        server.serve(_request(seed=8))
        degraded = server.serve(_request(seed=10, deadline_ms=1e-9))
        assert degraded.degraded
        best_effort = server.serve(_request(seed=10))
        assert not best_effort.cache_hit  # fallback was not pinned
        assert best_effort.plan.overhead.total_s > 0

    def test_generous_deadline_admits(self, server):
        server.serve(_request(seed=8))
        resp = server.serve(_request(seed=11, deadline_ms=60_000.0))
        assert not resp.degraded and not resp.deadline_missed

    def test_estimate_tracks_history(self, server):
        assert server.estimate_compose_s(1000) is None
        resp = server.serve(_request(seed=12))
        est = server.estimate_compose_s(resp.plan.fmt.nnz)
        assert est is not None and est > 0


class TestDevicePool:
    def test_requests_spread_over_devices(self, liteform):
        server = SpMMServer(liteform=liteform, num_devices=3)
        for seed in range(6):
            server.serve(_request(seed=seed, n=300))
        counts = [s["requests"] for s in server.snapshot()["devices"]]
        assert sum(counts) == 6
        assert all(c >= 1 for c in counts)  # least-loaded placement spreads

    def test_rejects_empty_pool(self, liteform):
        with pytest.raises(ValueError):
            SpMMServer(liteform=liteform, num_devices=0)


class TestMetricsSnapshot:
    def test_snapshot_fields(self, server):
        server.serve(_request(seed=13))
        snap = server.snapshot()
        for key in ("requests", "hit_rate", "degraded", "deadline_misses",
                    "compose_spent_s", "compose_saved_s", "exec_ms",
                    "total_ms", "cache", "devices"):
            assert key in snap, key
        for p in ("p50", "p95", "p99"):
            assert p in snap["exec_ms"] and p in snap["total_ms"]

    def test_report_is_text(self, server):
        server.serve(_request(seed=14))
        text = server.report()
        assert "hit rate" in text and "device[0]" in text

    def test_latency_includes_compose_and_exec(self, server):
        resp = server.serve(_request(seed=15))
        assert resp.latency_ms == pytest.approx(
            resp.compose_overhead_s * 1e3 + resp.measurement.time_ms
        )


class TestResponseStatus:
    def test_ok_status_and_backcompat_views(self, server):
        from repro.serve import ResponseStatus

        resp = server.serve(_request(seed=21))
        assert resp.status is ResponseStatus.OK
        assert resp.ok and not resp.failed and not resp.degraded

    def test_degraded_status_mirrors_property(self, server):
        from repro.serve import ResponseStatus

        server.serve(_request(seed=22, n=300))  # warm the estimator
        resp = server.serve(_request(seed=23, n=2000, deadline_ms=1e-4))
        assert resp.status is ResponseStatus.DEGRADED
        assert resp.degraded and not resp.failed and not resp.ok

    def test_status_serializes_as_string(self, server):
        import json

        resp = server.serve(_request(seed=24))
        assert json.dumps(resp.status) == '"ok"'


class TestAsyncSurface:
    def test_submit_poll_roundtrip(self, server):
        ticket = server.submit(_request(seed=25))
        resp = server.poll(ticket)
        assert resp is not None and resp.C is not None
        assert server.poll(ticket) is None  # claimed exactly once

    def test_drain_preserves_submission_order(self, server):
        r1, r2 = _request(seed=26), _request(seed=27)
        server.submit(r1)
        server.submit(r2)
        out = server.drain()
        assert len(out) == 2
        assert out[0].key != out[1].key
        assert server.drain() == []

    def test_serve_is_submit_poll_wrapper(self, server):
        resp = server.serve(_request(seed=28))
        assert resp.C is not None
        assert server.metrics.requests == 1
