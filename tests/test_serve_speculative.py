"""Speculative recompose: immediate CSR on miss, background swap, OOM pins.

A cache miss on a speculative server never blocks on the full pipeline:
the request is served the CSR fallback plan immediately (status DEGRADED,
``speculative=True``) while a single-worker background executor composes
the real plan, which the *serving thread* swaps into the cache once ready
(the :class:`PlanCache` is not thread-safe, so swaps apply only between
requests or in ``wait_for_speculation``).

The degrade interaction (the bug class this suite pins down): a key whose
cache entry holds a CSR plan pinned by a *structural* OOM must never have
a speculative CELL plan swapped over it — the OOM already proved the full
plan cannot fit that working set.
"""

import threading
from dataclasses import dataclass
from functools import partial

import numpy as np
import pytest

from repro.core import LiteForm, generate_training_data
from repro.formats.base import as_csr
from repro.formats.csr import CSRFormat
from repro.gpu import SimulatedDevice, SimulatedOOMError
from repro.kernels import spmm_reference
from repro.matrices import SuiteSparseLikeCollection, power_law_graph
from repro.serve import PlanCache, SpMMRequest, SpMMServer
from repro.serve.fingerprint import fingerprint_csr, plan_key
from repro.serve.scheduler import Scheduler
from repro.serve.server import ResponseStatus


@pytest.fixture(scope="module")
def liteform():
    coll = SuiteSparseLikeCollection(size=6, max_rows=2500, seed=11)
    return LiteForm().fit(generate_training_data(coll, J_values=(32,)))


def _request(seed=1, n=400, J=32, with_B=False):
    A = power_law_graph(n, 6, seed=seed)
    B = None
    if with_B:
        B = np.random.default_rng(seed).standard_normal(
            (A.shape[1], J)
        ).astype(np.float32)
    return SpMMRequest(matrix=A, B=B, J=J)


def _key(request):
    return plan_key(fingerprint_csr(as_csr(request.matrix)), request.J)


def _server(liteform, **kwargs):
    kwargs.setdefault("cache", PlanCache(max_bytes=1 << 30))
    return SpMMServer(liteform=liteform, speculative=True, **kwargs)


@dataclass
class _ArmedDevice(SimulatedDevice):
    """Raises a structural OOM while armed, then behaves normally."""

    armed: bool = False

    def measure(self, stats):
        if self.armed:
            self.armed = False
            raise SimulatedOOMError(2 * self.spec.dram_bytes, self.spec.dram_bytes)
        return super().measure(stats)


class TestSpeculativeMiss:
    def test_miss_serves_csr_immediately(self, liteform):
        server = _server(liteform)
        resp = server.serve(_request(seed=40))
        assert resp.speculative and not resp.cache_hit
        assert resp.status is ResponseStatus.DEGRADED
        assert not resp.plan.use_cell
        m = server.metrics
        assert m.speculative_misses == 1 and m.cache_misses == 1
        # Speculative service is not admission degradation.
        assert m.degraded == 0

    def test_swap_then_hit_matches_blocking_server(self, liteform):
        req = _request(seed=41)
        spec = _server(liteform)
        first = spec.serve(req)
        assert first.speculative
        applied = spec.wait_for_speculation()
        assert applied == 1
        assert spec.metrics.speculative_swaps == 1

        second = spec.serve(req)
        assert second.cache_hit and not second.speculative
        assert second.status is ResponseStatus.OK

        blocking = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
        ref = blocking.serve(req)
        assert second.plan.use_cell == ref.plan.use_cell
        assert second.plan.max_widths == ref.plan.max_widths

    def test_speculative_response_is_numerically_correct(self, liteform):
        req = _request(seed=42, with_B=True)
        server = _server(liteform)
        resp = server.serve(req)
        assert resp.speculative and resp.C is not None
        np.testing.assert_allclose(
            resp.C, spmm_reference(req.matrix, req.B), rtol=1e-4, atol=1e-4
        )

    def test_inflight_compose_is_not_duplicated(self, liteform, monkeypatch):
        gate = threading.Event()
        original = liteform.compose_csr

        def gated(A, J, **kw):
            gate.wait(timeout=30)
            return original(A, J, **kw)

        monkeypatch.setattr(liteform, "compose_csr", gated)
        server = _server(liteform)
        req = _request(seed=43)
        server.serve(req)
        server.serve(req)  # still a miss; compose still in flight
        assert len(server._inflight) == 1
        assert server.metrics.speculative_misses == 2
        gate.set()
        assert server.wait_for_speculation() == 1

    def test_background_compose_error_is_skipped(self, liteform, monkeypatch):
        def boom(A, J, **kw):
            raise RuntimeError("injected compose failure")

        monkeypatch.setattr(liteform, "compose_csr", boom)
        server = _server(liteform)
        req = _request(seed=44)
        resp = server.serve(req)
        assert resp.speculative and not resp.failed
        assert server.wait_for_speculation() == 0
        assert server.metrics.speculative_skipped == 1
        assert server.metrics.speculative_swaps == 0
        assert not server._inflight  # the failed future was drained

    def test_replay_settles_speculation(self, liteform):
        requests = [_request(seed=s) for s in (45, 46, 47)]
        server = _server(liteform)
        server.replay(requests)
        assert not server._inflight
        m = server.metrics
        assert m.speculative_misses == 3
        assert m.speculative_swaps == 3
        for r in requests:
            assert _key(r) in server.cache

    def test_scheduler_replay_settles_speculation(self, liteform):
        server = _server(liteform)
        scheduler = Scheduler(server=server, max_batch=4)
        scheduler.replay([_request(seed=s) for s in (48, 48, 49)])
        assert not server._inflight
        assert server.metrics.speculative_swaps >= 1
        assert server.metrics.speculative_misses >= 2


class TestOOMPinInteraction:
    def _cell_liteform(self, liteform, monkeypatch):
        # Force CELL plans so the structural-OOM degrade path has a
        # bigger-footprint plan to fall back from.
        monkeypatch.setattr(
            liteform,
            "compose_csr",
            partial(LiteForm.compose_csr, liteform, force_cell=True),
        )
        return liteform

    def test_pinned_key_is_not_overwritten_after_eviction(
        self, liteform, monkeypatch
    ):
        """T1: swap lands -> CELL hit OOMs structurally -> pin -> entry
        evicted -> the re-miss re-pins the CSR fallback without paying a
        background compose that would only be discarded."""
        lf = self._cell_liteform(liteform, monkeypatch)
        device = _ArmedDevice()
        server = _server(lf, devices=[device])
        req = _request(seed=50)
        key = _key(req)

        first = server.serve(req)
        assert first.speculative
        assert server.wait_for_speculation() == 1
        assert server.cache.peek(key).plan.use_cell

        device.armed = True
        second = server.serve(req)
        assert second.cache_hit and second.degraded_oom and not second.failed
        assert isinstance(second.plan.fmt, CSRFormat)
        assert key in server._oom_pinned
        assert isinstance(server.cache.peek(key).plan.fmt, CSRFormat)

        # Eviction (or shard migration) drops the entry; the pin survives.
        assert server.cache.pop(key) is not None
        third = server.serve(req)
        assert third.speculative and not third.failed
        assert not third.plan.use_cell
        assert not server._inflight, "pinned key must not re-compose"
        entry = server.cache.peek(key)
        assert entry is not None and isinstance(entry.plan.fmt, CSRFormat)

        fourth = server.serve(req)
        assert fourth.cache_hit and not fourth.degraded_oom
        assert server.metrics.oom_degraded == 1  # OOM paid exactly once

    def test_pin_during_speculative_window_blocks_swap(
        self, liteform, monkeypatch
    ):
        """T2: the compose is *in flight* when a replicated CELL plan hits
        a structural OOM and pins the key; the late swap must be skipped,
        not clobber the pin."""
        lf = self._cell_liteform(liteform, monkeypatch)
        gate = threading.Event()
        forced = lf.compose_csr

        def gated(A, J, **kw):
            gate.wait(timeout=30)
            return forced(A, J, **kw)

        monkeypatch.setattr(lf, "compose_csr", gated)
        device = _ArmedDevice()
        server = _server(lf, devices=[device])
        req = _request(seed=51)
        key = _key(req)

        first = server.serve(req)
        assert first.speculative and len(server._inflight) == 1

        # A cluster peer replicates the hot key's CELL plan into this
        # shard's cache while the local compose is still in flight.
        cell_plan = forced(as_csr(req.matrix), req.J)
        assert cell_plan.use_cell
        server.cache.put(key, cell_plan)

        device.armed = True
        second = server.serve(req)
        assert second.cache_hit and second.degraded_oom and not second.failed
        assert key in server._oom_pinned

        gate.set()
        assert server.wait_for_speculation() == 0
        m = server.metrics
        assert m.speculative_skipped == 1 and m.speculative_swaps == 0
        entry = server.cache.peek(key)
        assert entry is not None and isinstance(entry.plan.fmt, CSRFormat)

        third = server.serve(req)
        assert third.cache_hit and not third.failed
        assert isinstance(third.plan.fmt, CSRFormat)


class TestMetricsSurface:
    def test_snapshot_and_report_carry_speculative_counters(self, liteform):
        server = _server(liteform)
        server.serve(_request(seed=52))
        server.wait_for_speculation()
        snap = server.metrics.snapshot()
        assert snap["speculative_misses"] == 1
        assert snap["speculative_swaps"] == 1
        assert snap["speculative_skipped"] == 0
        assert "speculative" in server.metrics.report()
        reg = server.metrics.registry
        assert reg.get("serve_speculative_misses_total").value == 1
        assert reg.get("serve_speculative_swaps_total").value == 1

    def test_non_speculative_server_unchanged(self, liteform):
        server = SpMMServer(liteform=liteform, cache=PlanCache(max_bytes=1 << 30))
        resp = server.serve(_request(seed=53))
        assert not resp.speculative
        assert server.metrics.speculative_misses == 0
        assert server.wait_for_speculation() == 0
        assert "speculative" not in server.metrics.report()
