"""Workload generator: determinism, Zipf skew, request plumbing."""

from collections import Counter

import numpy as np
import pytest

from repro.serve import WorkloadSpec, generate_workload, zipf_weights


def _matrix_name(request):
    return request.name.split(":", 1)[1]


class TestZipfWeights:
    def test_normalized_and_decreasing(self):
        w = zipf_weights(20, 1.1)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(np.diff(w) < 0)

    def test_uniform_at_zero_exponent(self):
        w = zipf_weights(8, 0.0)
        np.testing.assert_allclose(w, np.full(8, 1 / 8))

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(4, -1.0)


class TestGeneration:
    SPEC = WorkloadSpec(
        num_requests=80, num_matrices=8, max_rows=2500, seed=5,
        J_choices=(32, 64), with_operands=False,
    )

    def test_request_count_and_names(self):
        reqs = generate_workload(self.SPEC)
        assert len(reqs) == 80
        assert all(r.name.startswith("req") for r in reqs)

    def test_deterministic_for_same_spec(self):
        a = generate_workload(self.SPEC)
        b = generate_workload(self.SPEC)
        assert [r.name for r in a] == [r.name for r in b]
        assert [r.J for r in a] == [r.J for r in b]

    def test_seed_changes_trace(self):
        other = WorkloadSpec(
            num_requests=80, num_matrices=8, max_rows=2500, seed=6,
            J_choices=(32, 64), with_operands=False,
        )
        assert [r.name for r in generate_workload(self.SPEC)] != [
            r.name for r in generate_workload(other)
        ]

    def test_zipf_skew_concentrates_traffic(self):
        spec = WorkloadSpec(
            num_requests=300, num_matrices=16, zipf_s=1.3, max_rows=2500,
            seed=7, with_operands=False,
        )
        counts = Counter(_matrix_name(r) for r in generate_workload(spec))
        top = counts.most_common(1)[0][1]
        assert top > 300 / 16 * 2  # hottest matrix well above uniform share

    def test_J_fixed_per_matrix_by_default(self):
        reqs = generate_workload(self.SPEC)
        j_by_matrix = {}
        for r in reqs:
            j_by_matrix.setdefault(_matrix_name(r), set()).add(r.J)
        assert all(len(js) == 1 for js in j_by_matrix.values())

    def test_mixed_J_when_not_fixed(self):
        spec = WorkloadSpec(
            num_requests=120, num_matrices=4, max_rows=2500, seed=8,
            J_choices=(32, 64), J_per_matrix=False, with_operands=False,
        )
        reqs = generate_workload(spec)
        assert {r.J for r in reqs} == {32, 64}

    def test_operands_shared_and_shaped(self):
        spec = WorkloadSpec(
            num_requests=30, num_matrices=4, max_rows=2500, seed=9,
        )
        reqs = generate_workload(spec)
        for r in reqs:
            assert r.B is not None
            assert r.B.shape == (r.matrix.shape[1], r.J)
        by_key = {}
        for r in reqs:
            by_key.setdefault((r.matrix.shape[1], r.J), r.B)
            assert by_key[(r.matrix.shape[1], r.J)] is r.B  # shared, not copied

    def test_deadline_fraction(self):
        spec = WorkloadSpec(
            num_requests=200, num_matrices=4, max_rows=2500, seed=10,
            deadline_ms=5.0, deadline_fraction=0.5, with_operands=False,
        )
        reqs = generate_workload(spec)
        tagged = sum(r.deadline_ms is not None for r in reqs)
        assert 60 <= tagged <= 140  # ~half, seeded
        assert all(r.deadline_ms in (None, 5.0) for r in reqs)

    def test_gnn_standins_in_pool(self):
        reqs = generate_workload(self.SPEC)
        names = {_matrix_name(r) for r in reqs}
        assert any(n.startswith("gnn:") for n in names)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_requests=0)
        with pytest.raises(ValueError):
            WorkloadSpec(J_choices=())
        with pytest.raises(ValueError):
            WorkloadSpec(gnn_names=("not-a-graph",))
        with pytest.raises(ValueError):
            WorkloadSpec(deadline_fraction=1.5)
