"""SpMV through the CELL format (J = 1 SpMM) and cross-kernel agreement.

The related-work systems (Auto-SpMV, Seer, WISE) all target SpMV; these
tests pin down that the CELL machinery covers that corner consistently
with the dedicated SpMV kernels.
"""

import numpy as np
import pytest

from repro.formats import CELLFormat, CSRFormat
from repro.kernels import CELLSpMM, spmm_reference
from repro.kernels.spmv import MergeCSRSpMV, ScalarCSRSpMV, VectorCSRSpMV
from repro.matrices import power_law_graph, uniform_random_matrix


@pytest.fixture(scope="module")
def workload():
    A = power_law_graph(2000, 9, seed=42)
    x = np.random.default_rng(1).standard_normal((A.shape[1], 1)).astype(np.float32)
    return A, x, spmm_reference(A, x)


class TestCellSpMV:
    def test_numeric_agreement_across_all_kernels(self, workload):
        A, x, ref = workload
        outs = {
            "cell": CELLSpMM().execute(CELLFormat.from_csr(A, max_widths=16), x),
            "scalar": ScalarCSRSpMV().execute(CSRFormat.from_csr(A), x),
            "vector": VectorCSRSpMV().execute(CSRFormat.from_csr(A), x),
            "merge": MergeCSRSpMV().execute(CSRFormat.from_csr(A), x),
        }
        for name, y in outs.items():
            np.testing.assert_allclose(y, ref, rtol=1e-4, atol=1e-4, err_msg=name)

    def test_cell_competitive_with_best_spmv_on_skew(self, workload, device):
        """CELL at J=1 should sit in the same league as the purpose-built
        SpMV kernels (it is, structurally, a sliced-ELL SpMV)."""
        A, _, _ = workload
        t_cell = CELLSpMM().measure(CELLFormat.from_csr(A, max_widths=16), 1, device).time_s
        best_spmv = min(
            k.measure(CSRFormat.from_csr(A), 1, device).time_s
            for k in (ScalarCSRSpMV(), VectorCSRSpMV(), MergeCSRSpMV())
        )
        assert t_cell < 5 * best_spmv

    def test_partitioned_cell_spmv_correct(self, workload):
        A, x, ref = workload
        y = CELLSpMM().execute(CELLFormat.from_csr(A, num_partitions=4), x)
        np.testing.assert_allclose(y, ref, rtol=1e-4, atol=1e-4)

    def test_uniform_rows_prefer_vector_over_scalar(self, device):
        """Even at uniform short rows, warp-serial scalar SpMV trails."""
        A = uniform_random_matrix(10_000, 10_000, density=8e-4, seed=7)
        fmt = CSRFormat.from_csr(A)
        t_scalar = ScalarCSRSpMV().measure(fmt, 1, device).time_s
        t_vector = VectorCSRSpMV().measure(fmt, 1, device).time_s
        assert t_vector < t_scalar * 2.0
