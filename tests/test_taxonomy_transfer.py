"""Tests for the Table 1 taxonomy and the transfer-learning utility."""

import pytest

from repro.baselines.taxonomy import TABLE1, liteform_row
from repro.core import LiteForm, generate_training_data
from repro.core.transfer import transfer_fit, transfer_training_data
from repro.gpu import SimulatedDevice
from repro.gpu.device import V100
from repro.matrices import SuiteSparseLikeCollection


class TestTable1:
    def test_thirteen_rows(self):
        assert len(TABLE1) == 13

    def test_liteform_positioning(self):
        """The paper's claim: LiteForm is the only system with all three
        properties — automatic, pattern-aware, low overhead."""
        lf = liteform_row()
        assert lf.automatic_selection and lf.sparsity_pattern_aware
        assert lf.construction_overhead == "low"
        others = [
            r
            for r in TABLE1
            if r.system != "LiteForm"
            and r.automatic_selection
            and r.sparsity_pattern_aware
            and r.construction_overhead == "low"
        ]
        assert not others

    def test_fixed_format_rows(self):
        fixed = [r for r in TABLE1 if r.category == "fixed"]
        assert {r.system for r in fixed} == {"cuSPARSE", "Triton", "TACO", "Sputnik", "dgSPARSE"}
        assert all(not r.automatic_selection for r in fixed)

    def test_composable_rows_high_overhead_except_liteform(self):
        for r in TABLE1:
            if r.category == "composable" and r.system != "LiteForm":
                assert r.construction_overhead == "high"

    def test_evaluated_systems_are_reimplemented(self):
        evaluated = {"cuSPARSE", "Triton", "TACO", "Sputnik", "dgSPARSE", "SparseTIR", "STile", "LiteForm"}
        for r in TABLE1:
            assert r.reimplemented == (r.system in evaluated)


class TestTransfer:
    @pytest.fixture(scope="class")
    def source_data(self):
        coll = SuiteSparseLikeCollection(size=10, max_rows=3000, seed=61)
        return generate_training_data(coll, J_values=(32,))

    @pytest.fixture(scope="class")
    def target_data(self):
        """'Measurements' from a different device (half the bandwidth)."""
        coll = SuiteSparseLikeCollection(size=3, max_rows=3000, seed=62)
        slow = SimulatedDevice(spec=V100.with_overrides(mem_bandwidth_gbs=450.0))
        return generate_training_data(coll, device=slow, J_values=(32,))

    def test_weighting(self, source_data, target_data):
        combined = transfer_training_data(source_data, target_data, target_weight=3)
        assert len(combined.format_samples) == len(source_data.format_samples) + 3 * len(
            target_data.format_samples
        )

    def test_transfer_fit_produces_usable_model(self, source_data, target_data):
        from repro.matrices import power_law_graph

        lf = transfer_fit(LiteForm(), source_data, target_data, target_weight=2)
        plan = lf.compose(power_law_graph(500, 6, seed=1), 32)
        assert plan.overhead.total_s > 0

    def test_invalid_weight(self, source_data, target_data):
        with pytest.raises(ValueError):
            transfer_training_data(source_data, target_data, target_weight=0)

    def test_empty_target_rejected(self, source_data):
        from repro.core.training import TrainingData

        with pytest.raises(ValueError):
            transfer_fit(LiteForm(), source_data, TrainingData())

    def test_sources_not_mutated(self, source_data, target_data):
        n_before = len(source_data.format_samples)
        transfer_training_data(source_data, target_data, target_weight=2)
        assert len(source_data.format_samples) == n_before
