"""Tests for the top-level one-call API."""

import numpy as np
import pytest

import repro
from repro.kernels import spmm_reference
from repro.matrices import power_law_graph


@pytest.fixture(scope="module")
def workload():
    A = power_law_graph(600, 8, seed=1)
    B = np.random.default_rng(0).standard_normal((A.shape[1], 16)).astype(np.float32)
    return A, B, spmm_reference(A, B)


@pytest.mark.parametrize(
    "method",
    ["cell", "csr", "sputnik", "dgsparse", "taco", "bcsr", "ell", "sliced-ell"],
)
def test_spmm_all_methods(method, workload):
    A, B, ref = workload
    C, m = repro.spmm(A, B, method=method)
    np.testing.assert_allclose(C, ref, rtol=1e-3, atol=1e-3)
    assert m.time_s > 0


def test_spmm_format_kwargs(workload):
    A, B, ref = workload
    C, m = repro.spmm(A, B, method="cell", num_partitions=2, max_widths=8)
    np.testing.assert_allclose(C, ref, rtol=1e-3, atol=1e-3)


def test_spmm_unknown_method(workload):
    A, B, _ = workload
    with pytest.raises(ValueError):
        repro.spmm(A, B, method="magic")


def test_spmm_accepts_dense_input():
    A = np.eye(5, dtype=np.float32)
    B = np.arange(10, dtype=np.float32).reshape(5, 2)
    C, _ = repro.spmm(A, B, method="csr")
    np.testing.assert_allclose(C, B)


def test_version():
    assert repro.__version__
