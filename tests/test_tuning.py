"""Tests for the generic composition tuners."""

import numpy as np
import pytest

from repro.matrices import mixture_matrix, power_law_graph
from repro.tuning import (
    ExhaustiveTuner,
    HillClimbTuner,
    RandomSearchTuner,
    cell_candidate_space,
)


@pytest.fixture(scope="module")
def matrix():
    return power_law_graph(1200, 8, seed=9)


class TestCandidateSpace:
    def test_covers_partitions_and_widths(self, matrix):
        space = cell_candidate_space(matrix)
        parts = {p for p, _ in space}
        widths = {w for _, w in space}
        assert 1 in parts and max(parts) >= 8
        assert 1 in widths
        assert all(w & (w - 1) == 0 for w in widths)

    def test_width_cap(self, matrix):
        space = cell_candidate_space(matrix, max_width_cap=16)
        assert max(w for _, w in space) <= 16

    def test_partitions_clamped_to_columns(self):
        import scipy.sparse as sp

        from repro.formats.base import as_csr

        narrow = as_csr(sp.random(200, 4, density=0.3, random_state=0, dtype=np.float32))
        assert max(p for p, _ in cell_candidate_space(narrow)) <= 4


class TestExhaustive:
    def test_finds_global_best(self, matrix, device):
        tuner = ExhaustiveTuner(device=device)
        result = tuner.tune(matrix, 64)
        assert result.num_evaluations == len(cell_candidate_space(matrix))
        assert result.best.time_s == min(r.time_s for r in result.evaluated)

    def test_overhead_accounted(self, matrix, device):
        tuner = ExhaustiveTuner(device=device, compile_s=0.5, runs_per_candidate=5)
        result = tuner.tune(matrix, 64)
        assert result.overhead_s >= 0.5 * result.num_evaluations

    def test_build_materializes_winner(self, matrix, device):
        result = ExhaustiveTuner(device=device).tune(matrix, 32)
        fmt = result.build(matrix)
        assert fmt.num_partitions == result.best.num_partitions
        diff = fmt.to_csr() - matrix
        assert diff.nnz == 0 or abs(diff).max() < 1e-5

    def test_empty_matrix_rejected(self, device):
        import scipy.sparse as sp

        from repro.formats.base import as_csr

        with pytest.raises(ValueError):
            ExhaustiveTuner(device=device).tune(as_csr(sp.csr_matrix((4, 4))), 32)

    def test_invalid_J(self, matrix, device):
        with pytest.raises(ValueError):
            ExhaustiveTuner(device=device).tune(matrix, 0)


class TestRandomSearch:
    def test_respects_budget(self, matrix, device):
        result = RandomSearchTuner(budget=5, device=device).tune(matrix, 64)
        assert result.num_evaluations == 5

    def test_deterministic_by_seed(self, matrix, device):
        a = RandomSearchTuner(budget=6, seed=3, device=device).tune(matrix, 64)
        b = RandomSearchTuner(budget=6, seed=3, device=device).tune(matrix, 64)
        assert [(r.num_partitions, r.max_width) for r in a.evaluated] == [
            (r.num_partitions, r.max_width) for r in b.evaluated
        ]

    def test_never_beats_exhaustive(self, matrix, device):
        ex = ExhaustiveTuner(device=device).tune(matrix, 64)
        rnd = RandomSearchTuner(budget=4, seed=1, device=device).tune(matrix, 64)
        assert rnd.best.time_s >= ex.best.time_s - 1e-12
        assert rnd.overhead_s < ex.overhead_s

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            RandomSearchTuner(budget=0)


class TestHillClimb:
    def test_converges_near_exhaustive(self, device):
        A = mixture_matrix(1500, avg_degree=12, seed=5)
        ex = ExhaustiveTuner(device=device).tune(A, 64)
        hc = HillClimbTuner(device=device).tune(A, 64)
        assert hc.best.time_s <= ex.best.time_s * 1.3
        assert hc.num_evaluations <= ex.num_evaluations

    def test_cheaper_than_exhaustive(self, matrix, device):
        ex = ExhaustiveTuner(device=device).tune(matrix, 64)
        hc = HillClimbTuner(device=device).tune(matrix, 64)
        assert hc.overhead_s < ex.overhead_s

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            HillClimbTuner(max_steps=0)
