#!/usr/bin/env python
"""Dependency-free line coverage for pinning the CI coverage floor.

CI's 3.12 leg runs the tier-1 suite under ``pytest-cov`` with
``--cov=repro --cov-fail-under=<floor>``.  This tool measures the same
quantity — executed source lines over compile-time executable lines
(``code.co_lines()``), aggregated across every module under ``--src`` —
with nothing but the standard library, so the floor can be re-measured
in environments where coverage.py is not installed:

    PYTHONPATH=src python tools/measure_coverage.py -- -q

The number it prints tracks coverage.py's "line" percentage to within
about a point (coverage.py excludes e.g. ``continue``-only lines this
tool counts), which is why docs/BENCHMARKS.md pins the CI floor at the
measured value rounded *down*.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from pathlib import Path


def executable_lines(path: Path) -> set[int]:
    """Line numbers the compiler marks executable, nested scopes included."""
    try:
        code = compile(path.read_text(), str(path), "exec")
    except (SyntaxError, UnicodeDecodeError):
        return set()
    lines: set[int] = set()
    stack = [code]
    while stack:
        co = stack.pop()
        for _, _, line in co.co_lines():
            if line is not None:
                lines.add(line)
        stack.extend(c for c in co.co_consts if isinstance(c, type(code)))
    return lines


def make_tracer(root: str, executed: dict[str, set[int]]):
    """A settrace hook that records lines only for frames under ``root``.

    Filtering happens once per call (returning None disables per-line
    events for foreign frames), so the overhead on pytest internals is a
    single dict lookup per function call.
    """
    decision_cache: dict[str, str | None] = {}

    def resolve(filename: str) -> str | None:
        if filename not in decision_cache:
            absolute = os.path.abspath(filename)
            decision_cache[filename] = absolute if absolute.startswith(root) else None
        return decision_cache[filename]

    def tracer(frame, event, arg):
        if event != "call":
            return None
        resolved = resolve(frame.f_code.co_filename)
        if resolved is None:
            return None
        lines = executed.setdefault(resolved, set())

        def line_tracer(inner, inner_event, inner_arg):
            if inner_event == "line":
                lines.add(inner.f_lineno)
            return line_tracer

        return line_tracer

    return tracer


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--src", default="src/repro", help="source tree to measure")
    parser.add_argument(
        "--fail-under", type=float, default=None,
        help="exit 2 when total coverage is below this percentage",
    )
    parser.add_argument(
        "--per-file", action="store_true", help="print a per-file breakdown"
    )
    parser.add_argument(
        "pytest_args", nargs="*",
        help="arguments after `--` go to pytest (default: -q)",
    )
    args = parser.parse_args(argv)

    root = str(Path(args.src).resolve()) + os.sep
    executed: dict[str, set[int]] = {}
    tracer = make_tracer(root, executed)

    import pytest

    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        rc = pytest.main(args.pytest_args or ["-q"])
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if rc != 0:
        print(f"pytest exited {rc}; coverage not reported", file=sys.stderr)
        return int(rc)

    total_statements = 0
    total_covered = 0
    rows = []
    for path in sorted(Path(args.src).rglob("*.py")):
        statements = executable_lines(path)
        covered = statements & executed.get(str(path.resolve()), set())
        total_statements += len(statements)
        total_covered += len(covered)
        if statements:
            rows.append((str(path), len(statements), len(covered)))

    if args.per_file:
        for name, statements, covered in rows:
            print(f"{covered / statements:7.1%}  {covered:5d}/{statements:<5d}  {name}")
    percent = 100.0 * total_covered / max(1, total_statements)
    print(f"TOTAL {total_covered}/{total_statements} lines = {percent:.2f}%")
    if args.fail_under is not None and percent < args.fail_under:
        print(f"coverage {percent:.2f}% below floor {args.fail_under}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
